"""The fluent distributed-execution handle.

.. code-block:: python

    import repro
    from repro.apps import gauss_seidel

    program = repro.compile(gauss_seidel.generate_source_shaped((14, 14, 14)))
    dist = (program.lower("dmp", grid=(2, 2), execution_mode="vectorize")
                   .distribute(source_builder=gauss_seidel.generate_source_shaped))
    result = dist.run(global_field, iterations=3)   # hides all sharding
    result.field                                    # gathered global array
    result.rank_stats                               # per-rank messages/bytes/times

``CompiledProgram.distribute()`` (dmp backend only) wraps the compiled
handle in a :class:`DistributedProgram` whose :meth:`DistributedProgram.run`
scatters a global Fortran-ordered field, runs one interpreter per simulated
rank on the persistent rank pool of
:mod:`repro.runtime.distributed_executor`, and gathers the result.  The
process grid lives in the frozen :class:`repro.api.DmpOptions` (part of the
session cache key — a new grid is a recompile); rank count, pool size,
execution mode and per-rank threads are runtime-only knobs that never force
one.

Rank-local compilation goes back through the bound session: with no
``source_builder`` every rank runs the program's own source (so the
decomposition must give every rank the same padded shape, matching the
compiled extents); with one, each distinct padded local shape is generated
and compiled once per session — which is what lets non-divisible global
domains, where ranks own different-sized boxes, execute at all.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..dialects import fir as fir_dialect
from ..dialects.func import FuncOp
from ..runtime.distributed_executor import (
    DistributedExecutor,
    DistributedRunResult,
)
from ..runtime.interpreter import Interpreter
from ..runtime.mpi_runtime import CartesianDecomposition, SimulatedCommunicator
from ..resilience import ResilienceOptions
from .options import OptionError, validate_timeout

if TYPE_CHECKING:  # pragma: no cover
    from .program import CompiledProgram

#: Builds rank-local Fortran source for one padded local shape.
SourceBuilder = Callable[[Tuple[int, ...]], str]


def detect_halo(compiled: "CompiledProgram") -> int:
    """The widest ``dmp.halo`` width recorded on the lowered stencil module
    (the ghost-plane padding every rank-local array needs); 1 when the
    module carries no distributed metadata."""
    module = compiled.stencil_module
    widest = 0
    if module is not None:
        for op in module.walk():
            attr = op.get_attr_or_none("dmp.halo")
            if attr is not None:
                widest = max(widest, *attr.as_tuple())
    return widest if widest > 0 else 1


def detect_entry(compiled: "CompiledProgram") -> str:
    """The single non-declaration function of the FIR module (the original
    Fortran subroutine); ambiguous modules must name the entry explicitly."""
    names = [
        op.sym_name for op in compiled.fir_module.walk()
        if isinstance(op, FuncOp) and not op.is_declaration
    ]
    if len(names) != 1:
        raise OptionError(
            f"cannot infer the entry point from functions {names or 'none'}; "
            "pass distribute(entry=...)"
        )
    return names[0]


def _entry_array_shape(compiled: "CompiledProgram", entry: str) -> Optional[Tuple[int, ...]]:
    """Declared extents of ``entry``'s single array argument (None when the
    signature is not one statically-shaped array)."""
    for op in compiled.fir_module.walk():
        if isinstance(op, FuncOp) and op.sym_name == entry:
            inputs = op.function_type.inputs
            if len(inputs) != 1:
                return None
            arg_type = inputs[0]
            if fir_dialect.is_reference_like(arg_type):
                arg_type = arg_type.element_type
            shape = getattr(arg_type, "shape", None)
            if shape is None:
                return None
            return tuple(int(s) for s in shape)
    return None


class DistributedProgram:
    """A compiled dmp program bound to a multi-rank execution plan."""

    def __init__(self, compiled: "CompiledProgram", *,
                 ranks: Optional[int] = None,
                 pool_size: Optional[int] = None,
                 source_builder: Optional[SourceBuilder] = None,
                 entry: Optional[str] = None,
                 execution_mode: Optional[str] = None,
                 threads: Optional[int] = None,
                 timeout: float = 30.0,
                 resilience: Optional[ResilienceOptions] = None):
        if compiled.backend_name != "dmp":
            raise OptionError(
                "distribute() requires the 'dmp' backend; this handle was "
                f"lowered for '{compiled.backend_name}' — use "
                "program.lower('dmp', grid=...)"
            )
        timeout = validate_timeout(timeout, compiled.backend_name)
        if resilience is not None and not isinstance(resilience,
                                                     ResilienceOptions):
            raise OptionError(
                "resilience must be a ResilienceOptions instance, got "
                f"{type(resilience).__name__}"
            )
        self._compiled = compiled
        grid = compiled.options.grid
        num_ranks = 1
        for extent in grid:
            num_ranks *= extent
        if ranks is not None and ranks != num_ranks:
            raise OptionError(
                f"ranks={ranks} does not match the compiled process grid "
                f"{grid} ({num_ranks} ranks); the grid is a compile-time "
                "option — re-lower with a different grid= to change it"
            )
        self._source_builder = source_builder
        self._entry = entry
        self._execution_mode = execution_mode
        self._threads = threads
        self._resilience = resilience
        self._executor = DistributedExecutor(
            grid, halo=detect_halo(compiled), pool_size=pool_size,
            timeout=timeout,
        )

    # -- identity ------------------------------------------------------------

    @property
    def compiled(self) -> "CompiledProgram":
        return self._compiled

    @property
    def grid(self) -> Tuple[int, ...]:
        return self._executor.grid

    @property
    def ranks(self) -> int:
        return self._executor.num_ranks

    @property
    def halo(self) -> int:
        return self._executor.halo

    @property
    def executor(self) -> DistributedExecutor:
        return self._executor

    @property
    def entry(self) -> str:
        if self._entry is None:
            self._entry = detect_entry(self._compiled)
        return self._entry

    # -- derivation ----------------------------------------------------------

    def with_pool_size(self, pool_size: int) -> "DistributedProgram":
        """A plan with a different rank-pool size (runtime-only: reuses every
        cached artifact)."""
        return DistributedProgram(
            self._compiled, pool_size=pool_size,
            source_builder=self._source_builder, entry=self._entry,
            execution_mode=self._execution_mode, threads=self._threads,
            timeout=self._executor.timeout, resilience=self._resilience,
        )

    def with_resilience(self, resilience: Optional[ResilienceOptions]
                        ) -> "DistributedProgram":
        """A plan with a different recovery policy (runtime-only: reuses
        every cached artifact, exactly like ``with_pool_size``)."""
        return DistributedProgram(
            self._compiled,
            source_builder=self._source_builder, entry=self._entry,
            execution_mode=self._execution_mode, threads=self._threads,
            timeout=self._executor.timeout, resilience=resilience,
        )

    # -- execution -----------------------------------------------------------

    def run(self, global_field: np.ndarray,
            iterations: int = 1,
            resilience: Optional[ResilienceOptions] = None,
            ) -> DistributedRunResult:
        """Scatter ``global_field``, run every rank, gather the result.

        The input is not mutated; the gathered global array is
        ``result.field``, and ``result.rank_stats`` carries the per-rank
        message/byte counts and halo/kernel wall-times.  ``resilience``
        overrides the plan's recovery policy for this run; when one is
        active the run executes on the checkpoint/restart path and
        ``result.recovery`` carries the :class:`~repro.resilience.RecoveryReport`.
        """
        if resilience is None:
            resilience = self._resilience
        entry = self.entry
        handles: Dict[Tuple[int, ...], "CompiledProgram"] = {}

        def handle_for(local_shape: Tuple[int, ...]) -> "CompiledProgram":
            handle = handles.get(local_shape)
            if handle is not None:
                return handle
            if self._source_builder is None:
                expected = _entry_array_shape(self._compiled, entry)
                if expected is not None and expected != local_shape:
                    raise OptionError(
                        f"entry '{entry}' is compiled for array extents "
                        f"{expected} but rank-local arrays have shape "
                        f"{local_shape}; either size the global field so "
                        "every rank owns the compiled extents, or pass "
                        "distribute(source_builder=...) to compile per shape"
                    )
                handle = self._compiled
            else:
                source = self._source_builder(tuple(local_shape))
                handle = self._compiled.session.lower(
                    source, self._compiled.backend, self._compiled.options
                )
            handles[local_shape] = handle
            return handle

        # Pre-compile every distinct local shape on the calling thread so
        # rank workers never race the (lock-guarded but slow) first compile.
        decomposition = self._executor.decomposition_for(
            np.shape(global_field)
        )
        for rank in range(self.ranks):
            bounds = decomposition.local_bounds(rank)
            padded = tuple(
                (ub - lb) + 2 * self._executor.halo for lb, ub in bounds
            )
            handle_for(padded)

        def make_interpreter(rank: int, local_shape: Tuple[int, ...],
                             comm: SimulatedCommunicator,
                             decomposition: CartesianDecomposition) -> Interpreter:
            return handle_for(tuple(local_shape)).interpreter(
                comm=comm, rank=rank, decomposition=decomposition,
                execution_mode=self._execution_mode, threads=self._threads,
            )

        return self._executor.run(global_field, make_interpreter, entry,
                                  iterations=iterations,
                                  resilience=resilience)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DistributedProgram grid={self.grid} ranks={self.ranks} "
            f"pool={self._executor.pool_workers}>"
        )


__all__ = ["DistributedProgram", "SourceBuilder", "detect_halo",
           "detect_entry"]
