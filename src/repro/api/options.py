"""Per-backend option schemas.

The legacy :class:`repro.compiler.CompilerOptions` mixed every target's knobs
into one flat dataclass — GPU tile sizes sat next to OpenMP schedules and DMP
process grids, and nothing stopped a CPU compile from carrying ``grid=(4, 4)``.
Here each backend owns a frozen (hashable) dataclass holding exactly the
options it understands; passing an option a backend does not define is an
:class:`OptionError` at call time, and validation happens in ``__post_init__``
so an options object can never exist in an invalid state.

Frozen options double as cache-key material: :meth:`BackendOptions.cache_key`
drops the *runtime-only* fields (``execution_mode``, ``threads`` — they select
how compiled modules execute, not what is compiled), so deriving a vectorized
or multi-threaded handle from a compiled program hits the same
:class:`repro.api.Session` cache entry instead of recompiling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from ..runtime.kernel_compiler import EXECUTION_MODES
from ..runtime.parallel_executor import SCHEDULE_KINDS
from ..schedule.directives import ScheduleError, normalize_schedule_chain

#: GPU host/device data-management strategies (paper Figure 5).
GPU_DATA_STRATEGIES = ("optimised", "host_register")

#: Option fields that select how compiled modules *execute*, not what is
#: compiled.  Excluded from the artifact cache key so runtime derivations
#: (``.vectorize()``, ``.with_threads()``, a different GPU stream count)
#: never force a recompile.
RUNTIME_ONLY_FIELDS = frozenset({"execution_mode", "threads", "streams"})


class OptionError(ValueError):
    """An option value (or an option/backend combination) is invalid."""


def validate_execution_mode(value: Optional[str], default: str) -> str:
    """Resolve an execution-mode override: ``None`` means "use the default";
    anything else — including falsy strings — must be a valid mode."""
    if value is None:
        return default
    if value not in EXECUTION_MODES:
        raise OptionError(
            f"execution_mode must be one of {EXECUTION_MODES}, got {value!r}"
        )
    return value


def validate_timeout(value: float, backend: str) -> float:
    """Reject a non-positive communicator timeout at the fluent layer, with
    the backend named, instead of deep inside ``SimulatedCommunicator``
    mid-run."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise OptionError(
            f"timeout must be a positive number of seconds for the "
            f"'{backend}' backend, got {value!r}"
        )
    if value <= 0:
        raise OptionError(
            f"timeout must be positive for the '{backend}' backend, got "
            f"{value!r}"
        )
    return float(value)


def validate_threads(value: Optional[int], default: int) -> int:
    """Resolve a thread-count override: ``None`` means "use the default";
    anything else — including 0 — must be a positive integer."""
    if value is None:
        return default
    if value < 1:
        raise OptionError(f"threads must be >= 1, got {value!r}")
    return value


@dataclass(frozen=True)
class BackendOptions:
    """Options every backend understands.

    ``lower_to_scf`` chooses whether the extracted stencil module is lowered
    all the way to scf/omp/gpu loops or kept at the stencil level (the fast
    vectorised execution path); ``fuse_stencils`` toggles adjacent-stencil
    fusion (ablation E9); ``execution_mode`` and ``threads`` configure the
    interpreter that eventually runs the compiled modules.
    """

    lower_to_scf: bool = False
    fuse_stencils: bool = True
    execution_mode: str = "interpret"
    threads: int = 1
    schedule_chain: Tuple[Tuple, ...] = ()

    def __post_init__(self) -> None:
        if self.execution_mode not in EXECUTION_MODES:
            raise OptionError(
                f"execution_mode must be one of {EXECUTION_MODES}, "
                f"got {self.execution_mode!r}"
            )
        if not isinstance(self.threads, int) or self.threads < 1:
            raise OptionError(f"threads must be >= 1, got {self.threads!r}")
        try:
            normalized = normalize_schedule_chain(self.schedule_chain)
        except ScheduleError as exc:
            raise OptionError(f"invalid schedule_chain: {exc}") from exc
        object.__setattr__(self, "schedule_chain", normalized)

    # -- derivation & caching ------------------------------------------------

    def replace(self, **changes) -> "BackendOptions":
        """A copy with ``changes`` applied (frozen dataclasses re-validate)."""
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> Tuple:
        """Hashable identity of everything that affects *compilation*."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name not in RUNTIME_ONLY_FIELDS
        )

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))


@dataclass(frozen=True)
class FlangOnlyOptions(BackendOptions):
    """Plain FIR, no stencil specialisation — nothing beyond the basics."""


@dataclass(frozen=True)
class CpuOptions(BackendOptions):
    """Single-core CPU via the stencil flow."""


@dataclass(frozen=True)
class OpenMPOptions(BackendOptions):
    """Multi-threaded CPU (OpenMP).

    ``schedule``/``chunk_size`` become the ``schedule(...)`` clause that
    ``convert-scf-to-openmp`` records on each ``omp.wsloop`` and the tiled
    parallel executor honours; ``num_threads`` is the thread count recorded
    in the lowered module for the analytic cost model (unlike ``threads`` it
    does not change real execution).
    """

    schedule: str = "static"
    chunk_size: Optional[int] = None
    num_threads: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.schedule not in SCHEDULE_KINDS:
            raise OptionError(
                f"schedule must be one of {SCHEDULE_KINDS}, got {self.schedule!r}"
            )
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise OptionError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )


@dataclass(frozen=True)
class GpuOptions(BackendOptions):
    """Nvidia GPU (simulated V100).

    ``data_strategy`` selects the paper's bespoke host/device data-movement
    pass (``"optimised"``) or the naive ``gpu.host_register`` strategy;
    ``tile_sizes`` are the parallel-loop tile sizes of Listing 4 — ``None``
    (the default) adapts the paper's ``(32, 32, 1)`` to each kernel's rank
    at lower time, while an explicit tuple is validated against every
    lowered loop nest's rank (a mismatch is a loud :class:`OptionError`
    naming the kernel, never a silently ignored dimension).  Both are
    compile-time cache-key material.  ``streams`` is **runtime-only**: how
    many ordered device streams the simulated GPU exposes for the async
    transfer/launch overlap model — changing it derives a new handle without
    recompiling, exactly like ``execution_mode`` / ``threads``.
    """

    data_strategy: str = "optimised"
    tile_sizes: Optional[Tuple[int, ...]] = None
    streams: int = 2

    def __post_init__(self) -> None:
        if self.tile_sizes is not None:
            object.__setattr__(self, "tile_sizes", tuple(self.tile_sizes))
        super().__post_init__()
        if self.data_strategy not in GPU_DATA_STRATEGIES:
            raise OptionError(
                f"data_strategy must be one of {GPU_DATA_STRATEGIES}, "
                f"got {self.data_strategy!r}"
            )
        if self.tile_sizes is not None and (
            not self.tile_sizes or any(t < 1 for t in self.tile_sizes)
        ):
            raise OptionError(
                f"tile_sizes must be positive, got {self.tile_sizes}"
            )
        if not isinstance(self.streams, int) or self.streams < 1:
            raise OptionError(f"streams must be >= 1, got {self.streams!r}")


@dataclass(frozen=True)
class DmpOptions(BackendOptions):
    """Distributed memory via the DMP/MPI dialects.

    ``grid`` is the Cartesian process grid the domain is decomposed over,
    e.g. ``(4, 4)`` for 16 ranks.
    """

    grid: Tuple[int, ...] = (1, 1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", tuple(self.grid))
        super().__post_init__()
        if not self.grid or any(g < 1 for g in self.grid):
            raise OptionError(f"grid must be positive, got {self.grid}")


__all__ = [
    "GPU_DATA_STRATEGIES",
    "RUNTIME_ONLY_FIELDS",
    "OptionError",
    "validate_execution_mode",
    "validate_threads",
    "validate_timeout",
    "BackendOptions",
    "FlangOnlyOptions",
    "CpuOptions",
    "OpenMPOptions",
    "GpuOptions",
    "DmpOptions",
]
