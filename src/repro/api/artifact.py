"""Compiled artifacts: what a backend's lowering produced for one source.

A :class:`CompiledArtifact` is the unit the :class:`repro.api.Session` cache
stores — everything downstream execution needs (the FIR module, the extracted
stencil module after the backend's lowering, discovery/extraction metadata and
per-pass statistics), with no runtime state attached.  Interpreters built from
one artifact never mutate its modules, so a single artifact is safely shared
by any number of fluent handles and concurrent batch runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dialects.builtin import ModuleOp
from .options import BackendOptions


@dataclass
class CompiledArtifact:
    """Everything one backend's flow produced for one Fortran source."""

    source: str
    backend: str
    options: BackendOptions
    fir_module: ModuleOp
    stencil_module: Optional[ModuleOp] = None
    discovered_stencils: Dict[str, int] = field(default_factory=dict)
    extracted_functions: List[str] = field(default_factory=list)
    pass_statistics: List = field(default_factory=list)

    @property
    def modules(self) -> List[ModuleOp]:
        """The modules the interpreter links at run time (§3, Figure 1)."""
        mods = [self.fir_module]
        if self.stencil_module is not None:
            mods.append(self.stencil_module)
        return mods

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompiledArtifact backend={self.backend!r} "
            f"stencils={sum(self.discovered_stencils.values())} "
            f"extracted={len(self.extracted_functions)}>"
        )


__all__ = ["CompiledArtifact"]
