"""Experiment harness: one driver per paper figure plus ablations."""

from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    distributed_functional_check,
    figure2_single_core,
    figure3_openmp_gauss_seidel,
    figure4_openmp_pw_advection,
    figure5_gpu,
    figure6_distributed,
    fusion_ablation,
    gpu_data_ablation,
    harness_session,
    measured_distributed_scaling,
    measured_gpu_scaling,
    measured_openmp_scaling,
)
from .reporting import (
    format_table,
    fuzz_summary_table,
    kernel_stats_table,
    recovery_report_table,
    run_all,
    service_metrics_table,
)

__all__ = [
    "ExperimentResult",
    "harness_session",
    "figure2_single_core",
    "figure3_openmp_gauss_seidel",
    "figure4_openmp_pw_advection",
    "measured_openmp_scaling",
    "figure5_gpu",
    "measured_gpu_scaling",
    "figure6_distributed",
    "measured_distributed_scaling",
    "gpu_data_ablation",
    "fusion_ablation",
    "distributed_functional_check",
    "ALL_EXPERIMENTS",
    "format_table",
    "fuzz_summary_table",
    "kernel_stats_table",
    "recovery_report_table",
    "service_metrics_table",
    "run_all",
]
