"""Experiment drivers regenerating every figure of the paper's evaluation.

Each ``figureN`` function returns an :class:`ExperimentResult` whose rows hold
the same series the paper plots (throughput in MCells/s per configuration).
The compilation pipeline itself is exercised for real on a reduced grid (so
the experiment also validates numerics and collects event counts from the
simulated runtimes); paper-scale throughput comes from the analytic machine
models in :mod:`repro.runtime.cost_model`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import Session
from ..apps import gauss_seidel, pw_advection
from ..runtime.cost_model import (
    CPUCostModel,
    CRAY_PROFILE,
    DistributedCostModel,
    FLANG_PROFILE,
    GAUSS_SEIDEL_KERNEL,
    GPU_STRATEGIES,
    GPUCostModel,
    PW_ADVECTION_KERNEL,
    STENCIL_PROFILE,
    STRATEGY_HOST_REGISTER,
    STRATEGY_OPENACC_UNIFIED,
    STRATEGY_OPTIMISED,
)
from ..runtime.gpu_runtime import SimulatedGPU

#: One session for the whole harness: every experiment driver compiles
#: through it, so repeated compiles of the same (source, backend, options) —
#: e.g. the GPU data ablation running standalone *and* inside Figure 5 —
#: are measured cache hits instead of full discovery/extraction reruns.
_SESSION = Session()


def harness_session() -> Session:
    """The shared compile session (inspect ``.cache_stats`` for hit counts)."""
    return _SESSION


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus provenance metadata."""

    experiment: str
    description: str
    columns: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    def add(self, *values) -> None:
        self.rows.append(tuple(values))

    def series(self, label_column: int, value_column: int) -> Dict[object, float]:
        return {row[label_column]: row[value_column] for row in self.rows}

    def to_text(self) -> str:
        from .reporting import format_table

        return format_table(self)


_PAPER_SIZES = {
    "256^3 (16M)": 256**3,
    "512^3 (134M)": 512**3,
    "1024^3 (1.1B)": 1024**3,
    "1290^3 (2.1B)": 1290**3,
}

_GPU_SIZES = {
    "128^3 (2M)": 128**3,
    "256^3 (16M)": 256**3,
    "512^3 (134M)": 512**3,
}

_KERNELS = {
    "gauss_seidel": GAUSS_SEIDEL_KERNEL,
    "pw_advection": PW_ADVECTION_KERNEL,
}


def _validate_small_run(benchmark: str, n: int = 12) -> Dict[str, float]:
    """Compile and execute the benchmark on a small grid; return error norms.

    This ties every modelled figure back to a real run of the compilation
    pipeline and interpreter.
    """
    if benchmark == "gauss_seidel":
        source = gauss_seidel.generate_source(n, niters=2)
        result = _SESSION.compile(source).lower("cpu")
        data = gauss_seidel.initial_condition(n)
        work = data.copy(order="F")
        result.run("gauss_seidel", work)
        reference = gauss_seidel.reference_jacobi(data, 2)
        return {"max_error": float(np.abs(work - reference).max()),
                "stencils": sum(result.discovered_stencils.values())}
    source = pw_advection.generate_source(n)
    result = _SESSION.compile(source).lower("cpu")
    u, v, w, su, sv, sw = pw_advection.initial_fields(n)
    result.run("pw_advection", u, v, w, su, sv, sw)
    rsu, rsv, rsw = pw_advection.reference(u, v, w)
    error = max(
        float(np.abs(su - rsu).max()),
        float(np.abs(sv - rsv).max()),
        float(np.abs(sw - rsw).max()),
    )
    return {"max_error": error, "stencils": sum(result.discovered_stencils.values())}


# ---------------------------------------------------------------------------
# Figure 2: single core CPU
# ---------------------------------------------------------------------------


def figure2_single_core(validate: bool = True) -> ExperimentResult:
    """Single-core throughput, both benchmarks, four problem sizes (Figure 2)."""
    result = ExperimentResult(
        experiment="figure2",
        description="Single core performance, Cray vs Flang-only vs Stencil",
        columns=("benchmark", "problem_size", "compiler", "mcells_per_s"),
    )
    model = CPUCostModel()
    for bench_name, kernel in _KERNELS.items():
        for size_label, cells in _PAPER_SIZES.items():
            for profile in (CRAY_PROFILE, FLANG_PROFILE, STENCIL_PROFILE):
                result.add(
                    bench_name, size_label, profile.name,
                    model.throughput_mcells(kernel, profile, cells, threads=1),
                )
        if validate:
            result.notes[f"{bench_name}_validation"] = _validate_small_run(bench_name)
    return result


# ---------------------------------------------------------------------------
# Figures 3 and 4: OpenMP multithreading
# ---------------------------------------------------------------------------


_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def measured_openmp_scaling(
    benchmark: str = "pw_advection",
    thread_counts: Sequence[int] = (1, 2, 4),
    n: int = 64,
    repeats: int = 3,
    schedule: str = "static",
    chunk_size: Optional[int] = None,
) -> ExperimentResult:
    """*Measured* multi-thread throughput of the lowered OpenMP target.

    Unlike the analytic series of Figures 3–4 this actually executes the
    ``omp.wsloop`` nests: the module is compiled once with
    ``Target.STENCIL_OPENMP, lower_to_scf=True`` and each sweep runs through
    the vectorized backend's tiled parallel executor at every requested
    thread count (best-of-``repeats`` wall clock).  Rows carry throughput in
    MCells/s plus the speedup over the *first* requested thread count (pass
    ``thread_counts`` starting with 1 for speedup-vs-serial), and the notes
    record the tile/fallback counters so scaling anomalies can be
    diagnosed.  This is the series the cost model is cross-validated
    against.
    """
    result = ExperimentResult(
        experiment=f"measured_openmp_{benchmark}",
        description=(
            f"Measured tiled-parallel scaling of lowered {benchmark} "
            f"(n={n}, schedule={schedule})"
        ),
        columns=("benchmark", "threads", "seconds", "mcells_per_s",
                 "speedup_vs_first"),
    )
    if benchmark == "gauss_seidel":
        source = gauss_seidel.generate_source(n, niters=1)
        entry = "gauss_seidel"
        make_args = lambda: [gauss_seidel.initial_condition(n)]
        cells = (n - 2) ** 3
    else:
        source = pw_advection.generate_source(n)
        entry = "pw_advection"
        make_args = lambda: [f.copy(order="F") for f in pw_advection.initial_fields(n)]
        cells = (n - 1) ** 3
    compiled = _SESSION.compile(source).lower(
        "openmp", lower_to_scf=True, execution_mode="vectorize",
        schedule=schedule, chunk_size=chunk_size,
    )
    baseline = None
    for threads in thread_counts:
        interp = compiled.interpreter(threads=threads)
        args = make_args()
        interp.call(entry, *args)  # warm-up: compiles + binds the kernels
        best = float("inf")
        for _ in range(repeats):
            args = make_args()
            start = time.perf_counter()
            interp.call(entry, *args)
            best = min(best, time.perf_counter() - start)
        if baseline is None:
            baseline = best
        result.add(benchmark, threads, best, cells / best / 1e6, baseline / best)
        result.notes[f"threads={threads}"] = {
            "parallel_sweeps": interp.stats["parallel_sweeps"],
            "parallel_tiles": interp.stats["parallel_tiles"],
            "parallel_fallbacks": interp.stats["parallel_fallbacks"],
        }
    return result


def _openmp_figure(benchmark: str, figure: str,
                   measure_threads: Sequence[int] = (),
                   measure_n: int = 64) -> ExperimentResult:
    kernel = _KERNELS[benchmark]
    result = ExperimentResult(
        experiment=figure,
        description=f"OpenMP scaling of {benchmark} at 2.1 billion cells",
        columns=("benchmark", "threads", "compiler", "mcells_per_s"),
    )
    model = CPUCostModel()
    cells = _PAPER_SIZES["1290^3 (2.1B)"]
    for threads in _THREAD_COUNTS:
        for profile in (CRAY_PROFILE, FLANG_PROFILE, STENCIL_PROFILE):
            result.add(
                benchmark, threads, profile.name,
                model.throughput_mcells(kernel, profile, cells, threads=threads),
            )
    if measure_threads:
        # Real tiled-parallel runs on a reduced grid, reported next to the
        # model series (labelled "stencil-measured"; absolute numbers are not
        # comparable to the paper-scale model rows, the *scaling shape* is).
        measured = measured_openmp_scaling(
            benchmark, thread_counts=tuple(measure_threads), n=measure_n
        )
        for _, threads, seconds, mcells, speedup in measured.rows:
            result.add(benchmark, threads, "stencil-measured", mcells)
        result.notes["measured"] = {
            "grid_n": measure_n,
            "speedups": {row[1]: row[4] for row in measured.rows},
            **measured.notes,
        }
    return result


def figure3_openmp_gauss_seidel(
    measure_threads: Sequence[int] = (), measure_n: int = 64
) -> ExperimentResult:
    """Multithreaded Gauss-Seidel (Figure 3).  ``measure_threads`` adds
    measured tiled-parallel rows next to the model-predicted series."""
    return _openmp_figure("gauss_seidel", "figure3", measure_threads, measure_n)


def figure4_openmp_pw_advection(
    measure_threads: Sequence[int] = (), measure_n: int = 64
) -> ExperimentResult:
    """Multithreaded PW advection (Figure 4): stencil overtakes at 64/128
    threads.  ``measure_threads`` adds measured tiled-parallel rows."""
    return _openmp_figure("pw_advection", "figure4", measure_threads, measure_n)


# ---------------------------------------------------------------------------
# Figure 5: GPU
# ---------------------------------------------------------------------------


def figure5_gpu(validate: bool = True) -> ExperimentResult:
    """V100 throughput for both benchmarks and three data strategies (Figure 5)."""
    result = ExperimentResult(
        experiment="figure5",
        description="GPU performance: OpenACC/Nvidia vs stencil initial vs optimised data",
        columns=("benchmark", "problem_size", "strategy", "mcells_per_s"),
    )
    model = GPUCostModel()
    for bench_name, kernel in _KERNELS.items():
        for size_label, cells in _GPU_SIZES.items():
            for strategy in (STRATEGY_OPENACC_UNIFIED, STRATEGY_HOST_REGISTER,
                             STRATEGY_OPTIMISED):
                result.add(
                    bench_name, size_label, strategy.name,
                    model.throughput_mcells(kernel, strategy, cells),
                )
    if validate:
        result.notes["transfer_validation"] = gpu_data_ablation(n=10, niters=3).notes
    return result


def gpu_data_ablation(n: int = 10, niters: int = 3) -> ExperimentResult:
    """Ablation E8: run both GPU data strategies for real on a small grid and
    compare the PCIe traffic the simulated device records."""
    result = ExperimentResult(
        experiment="gpu_data_ablation",
        description="Observed PCIe traffic per data-management strategy",
        columns=("strategy", "kernel_launches", "h2d_bytes", "d2h_bytes", "on_demand_bytes"),
    )
    source = gauss_seidel.generate_source(n, niters=niters)
    for strategy in ("optimised", "host_register"):
        compiled = _SESSION.compile(source).lower("gpu", data_strategy=strategy)
        gpu_device = SimulatedGPU()
        interp = compiled.interpreter(gpu=gpu_device)
        data = gauss_seidel.initial_condition(n)
        interp.call("gauss_seidel", data.copy(order="F"))
        summary = gpu_device.summary()
        result.add(strategy, summary["launches"], summary["h2d_bytes"],
                   summary["d2h_bytes"], summary["on_demand_bytes"])
        result.notes[strategy] = summary
    return result


# ---------------------------------------------------------------------------
# Figure 6: distributed memory
# ---------------------------------------------------------------------------


_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def figure6_distributed(validate: bool = True) -> ExperimentResult:
    """Distributed-memory Gauss-Seidel scaling on up to 64 nodes (Figure 6)."""
    result = ExperimentResult(
        experiment="figure6",
        description="Distributed Gauss-Seidel, hand-parallelised vs auto (DMP/MPI)",
        columns=("nodes", "ranks", "variant", "mcells_per_s"),
    )
    model = DistributedCostModel()
    global_cells = 17e9
    for nodes in _NODE_COUNTS:
        ranks = nodes * 128
        hand = model.throughput_mcells(GAUSS_SEIDEL_KERNEL, CRAY_PROFILE,
                                       global_cells, ranks)
        auto = model.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                       global_cells, ranks, comm_efficiency=0.35)
        result.add(nodes, ranks, "hand_parallelised", hand)
        result.add(nodes, ranks, "stencil_auto_parallelised", auto)
    if validate:
        result.notes["functional_validation"] = distributed_functional_check()
    return result


def distributed_functional_check(n_local: int = 8, ranks: Tuple[int, int] = (2, 2),
                                 niters: int = 2) -> Dict[str, float]:
    """Run the DMP/MPI-lowered Gauss-Seidel on a simulated communicator and
    compare against the single-process Jacobi reference on the global domain."""
    import threading

    from ..runtime.mpi_runtime import CartesianDecomposition, SimulatedCommunicator

    halo = 1
    grid = tuple(ranks)
    num_ranks = grid[0] * grid[1]
    local_n = n_local
    global_shape = (local_n * grid[0], local_n * grid[1], local_n)
    rng = np.random.default_rng(3)
    global_field = np.asfortranarray(rng.random(global_shape))

    reference = gauss_seidel.reference_jacobi(global_field, niters)

    comm = SimulatedCommunicator(num_ranks)
    decomposition = CartesianDecomposition(global_shape, grid, (0, 1))

    source = gauss_seidel.generate_source(local_n + 2 * halo, niters=1)
    compiled = _SESSION.compile(source).lower("dmp", grid=grid)

    local_fields: Dict[int, np.ndarray] = {}
    for rank in range(num_ranks):
        (xl, xu), (yl, yu), (zl, zu) = decomposition.local_bounds(rank)
        local = np.zeros((local_n + 2, local_n + 2, local_n + 2), order="F")
        local[1:-1, 1:-1, 1:-1] = global_field[xl:xu, yl:yu, :]
        # Populate physical (non-periodic) ghost planes with the global data
        # that borders this sub-domain so edge updates match the reference.
        x_lo = global_field[xl - 1, yl:yu, :] if xl > 0 else local[0, 1:-1, 1:-1]
        local[0, 1:-1, 1:-1] = x_lo
        x_hi = global_field[xu, yl:yu, :] if xu < global_shape[0] else local[-1, 1:-1, 1:-1]
        local[-1, 1:-1, 1:-1] = x_hi
        y_lo = global_field[xl:xu, yl - 1, :] if yl > 0 else local[1:-1, 0, 1:-1]
        local[1:-1, 0, 1:-1] = y_lo
        y_hi = global_field[xl:xu, yu, :] if yu < global_shape[1] else local[1:-1, -1, 1:-1]
        local[1:-1, -1, 1:-1] = y_hi
        local_fields[rank] = local

    def run_rank(rank: int) -> None:
        interp = compiled.interpreter(
            comm=comm, rank=rank, decomposition=decomposition
        )
        for _ in range(niters):
            interp.call("gauss_seidel", local_fields[rank])

    threads = [threading.Thread(target=run_rank, args=(r,)) for r in range(num_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Compare the region unaffected by physical-boundary treatment differences:
    # the local kernels update every cell of their sub-domain (including cells
    # on the global boundary) whereas the global reference keeps boundaries
    # fixed, and that difference propagates inwards one cell per sweep.  Cells
    # at distance >= niters from the global boundary are identical whenever the
    # halo exchanges are correct, including across every rank-rank interface.
    margin = niters
    max_error = 0.0
    compared = 0
    for rank in range(num_ranks):
        (xl, xu), (yl, yu), _ = decomposition.local_bounds(rank)
        gx0, gx1 = max(xl, margin), min(xu, global_shape[0] - margin)
        gy0, gy1 = max(yl, margin), min(yu, global_shape[1] - margin)
        gz0, gz1 = margin, global_shape[2] - margin
        if gx0 >= gx1 or gy0 >= gy1 or gz0 >= gz1:
            continue
        local = local_fields[rank]
        mine = local[1 + gx0 - xl:1 + gx1 - xl, 1 + gy0 - yl:1 + gy1 - yl, 1 + gz0:1 + gz1]
        ref = reference[gx0:gx1, gy0:gy1, gz0:gz1]
        compared += mine.size
        max_error = max(max_error, float(np.abs(mine - ref).max()))
    return {"max_interior_error": max_error, "ranks": num_ranks,
            "compared_cells": compared,
            "messages": comm.message_count, "bytes": comm.bytes_sent}


# ---------------------------------------------------------------------------
# Ablation E9: stencil fusion on/off for PW advection
# ---------------------------------------------------------------------------


def fusion_ablation(n: int = 10) -> ExperimentResult:
    """Compare the stencil module with and without fusion (E9)."""
    result = ExperimentResult(
        experiment="fusion_ablation",
        description="PW advection with and without stencil fusion",
        columns=("variant", "stencil_applies", "modelled_mcells_per_s"),
    )
    model = CPUCostModel()
    source = pw_advection.generate_source(n)
    for fuse in (True, False):
        compiled = _SESSION.compile(source).lower("cpu", fuse_stencils=fuse)
        applies = sum(
            1 for op in compiled.stencil_module.walk() if op.name == "stencil.apply"
        )
        kernel = PW_ADVECTION_KERNEL
        if fuse:
            mcells = model.throughput_mcells(kernel, STENCIL_PROFILE, 512**3, 128)
        else:
            unfused = STENCIL_PROFILE
            # Without fusion the stencil flow pays the same three-pass traffic
            # as the separately compiled loops.
            from ..runtime.cost_model import CompilerProfile

            unfused = CompilerProfile(
                name="cray", flop_efficiency=STENCIL_PROFILE.flop_efficiency,
                bandwidth_efficiency=STENCIL_PROFILE.bandwidth_efficiency,
                ops_per_access=STENCIL_PROFILE.ops_per_access,
            )
            mcells = model.throughput_mcells(kernel, unfused, 512**3, 128)
        result.add("fused" if fuse else "unfused", applies, mcells)
    return result


ALL_EXPERIMENTS = {
    "figure2": figure2_single_core,
    "figure3": figure3_openmp_gauss_seidel,
    "figure4": figure4_openmp_pw_advection,
    "figure5": figure5_gpu,
    "figure6": figure6_distributed,
    "gpu_data_ablation": gpu_data_ablation,
    "fusion_ablation": fusion_ablation,
}


__all__ = [
    "ExperimentResult",
    "harness_session",
    "figure2_single_core",
    "figure3_openmp_gauss_seidel",
    "figure4_openmp_pw_advection",
    "measured_openmp_scaling",
    "figure5_gpu",
    "figure6_distributed",
    "gpu_data_ablation",
    "fusion_ablation",
    "distributed_functional_check",
    "ALL_EXPERIMENTS",
]
