"""Experiment drivers regenerating every figure of the paper's evaluation.

Each ``figureN`` function returns an :class:`ExperimentResult` whose rows hold
the same series the paper plots (throughput in MCells/s per configuration).
The compilation pipeline itself is exercised for real on a reduced grid (so
the experiment also validates numerics and collects event counts from the
simulated runtimes); paper-scale throughput comes from the analytic machine
models in :mod:`repro.runtime.cost_model`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import Session
from ..apps import gauss_seidel, pw_advection
from ..runtime.cost_model import (
    CPUCostModel,
    CRAY_PROFILE,
    DistributedCostModel,
    FLANG_PROFILE,
    GAUSS_SEIDEL_KERNEL,
    GPU_STRATEGIES,
    GPUCostModel,
    PW_ADVECTION_KERNEL,
    STENCIL_PROFILE,
    STRATEGY_HOST_REGISTER,
    STRATEGY_OPENACC_UNIFIED,
    STRATEGY_OPTIMISED,
)
from ..runtime.gpu_runtime import SimulatedGPU

#: One session for the whole harness: every experiment driver compiles
#: through it, so repeated compiles of the same (source, backend, options) —
#: e.g. the GPU data ablation running standalone *and* inside Figure 5 —
#: are measured cache hits instead of full discovery/extraction reruns.
_SESSION = Session()


def harness_session() -> Session:
    """The shared compile session (inspect ``.cache_stats`` for hit counts)."""
    return _SESSION


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus provenance metadata."""

    experiment: str
    description: str
    columns: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    def add(self, *values) -> None:
        self.rows.append(tuple(values))

    def series(self, label_column: int, value_column: int) -> Dict[object, float]:
        return {row[label_column]: row[value_column] for row in self.rows}

    def to_text(self) -> str:
        from .reporting import format_table

        return format_table(self)


_PAPER_SIZES = {
    "256^3 (16M)": 256**3,
    "512^3 (134M)": 512**3,
    "1024^3 (1.1B)": 1024**3,
    "1290^3 (2.1B)": 1290**3,
}

_GPU_SIZES = {
    "128^3 (2M)": 128**3,
    "256^3 (16M)": 256**3,
    "512^3 (134M)": 512**3,
}

_KERNELS = {
    "gauss_seidel": GAUSS_SEIDEL_KERNEL,
    "pw_advection": PW_ADVECTION_KERNEL,
}


def _validate_small_run(benchmark: str, n: int = 12) -> Dict[str, float]:
    """Compile and execute the benchmark on a small grid; return error norms.

    This ties every modelled figure back to a real run of the compilation
    pipeline and interpreter.
    """
    if benchmark == "gauss_seidel":
        source = gauss_seidel.generate_source(n, niters=2)
        result = _SESSION.compile(source).lower("cpu")
        data = gauss_seidel.initial_condition(n)
        work = data.copy(order="F")
        result.run("gauss_seidel", work)
        reference = gauss_seidel.reference_jacobi(data, 2)
        return {"max_error": float(np.abs(work - reference).max()),
                "stencils": sum(result.discovered_stencils.values())}
    source = pw_advection.generate_source(n)
    result = _SESSION.compile(source).lower("cpu")
    u, v, w, su, sv, sw = pw_advection.initial_fields(n)
    result.run("pw_advection", u, v, w, su, sv, sw)
    rsu, rsv, rsw = pw_advection.reference(u, v, w)
    error = max(
        float(np.abs(su - rsu).max()),
        float(np.abs(sv - rsv).max()),
        float(np.abs(sw - rsw).max()),
    )
    return {"max_error": error, "stencils": sum(result.discovered_stencils.values())}


# ---------------------------------------------------------------------------
# Figure 2: single core CPU
# ---------------------------------------------------------------------------


def figure2_single_core(validate: bool = True) -> ExperimentResult:
    """Single-core throughput, both benchmarks, four problem sizes (Figure 2)."""
    result = ExperimentResult(
        experiment="figure2",
        description="Single core performance, Cray vs Flang-only vs Stencil",
        columns=("benchmark", "problem_size", "compiler", "mcells_per_s"),
    )
    model = CPUCostModel()
    for bench_name, kernel in _KERNELS.items():
        for size_label, cells in _PAPER_SIZES.items():
            for profile in (CRAY_PROFILE, FLANG_PROFILE, STENCIL_PROFILE):
                result.add(
                    bench_name, size_label, profile.name,
                    model.throughput_mcells(kernel, profile, cells, threads=1),
                )
        if validate:
            result.notes[f"{bench_name}_validation"] = _validate_small_run(bench_name)
    return result


# ---------------------------------------------------------------------------
# Figures 3 and 4: OpenMP multithreading
# ---------------------------------------------------------------------------


_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def measured_openmp_scaling(
    benchmark: str = "pw_advection",
    thread_counts: Sequence[int] = (1, 2, 4),
    n: int = 64,
    repeats: int = 3,
    schedule: str = "static",
    chunk_size: Optional[int] = None,
) -> ExperimentResult:
    """*Measured* multi-thread throughput of the lowered OpenMP target.

    Unlike the analytic series of Figures 3–4 this actually executes the
    ``omp.wsloop`` nests: the module is compiled once with
    ``Target.STENCIL_OPENMP, lower_to_scf=True`` and each sweep runs through
    the vectorized backend's tiled parallel executor at every requested
    thread count (best-of-``repeats`` wall clock).  Rows carry throughput in
    MCells/s plus the speedup over the *first* requested thread count (pass
    ``thread_counts`` starting with 1 for speedup-vs-serial), and the notes
    record the tile/fallback counters so scaling anomalies can be
    diagnosed.  This is the series the cost model is cross-validated
    against.
    """
    result = ExperimentResult(
        experiment=f"measured_openmp_{benchmark}",
        description=(
            f"Measured tiled-parallel scaling of lowered {benchmark} "
            f"(n={n}, schedule={schedule})"
        ),
        columns=("benchmark", "threads", "seconds", "mcells_per_s",
                 "speedup_vs_first"),
    )
    if benchmark == "gauss_seidel":
        source = gauss_seidel.generate_source(n, niters=1)
        entry = "gauss_seidel"
        make_args = lambda: [gauss_seidel.initial_condition(n)]
        cells = (n - 2) ** 3
    else:
        source = pw_advection.generate_source(n)
        entry = "pw_advection"
        make_args = lambda: [f.copy(order="F") for f in pw_advection.initial_fields(n)]
        cells = (n - 1) ** 3
    compiled = _SESSION.compile(source).lower(
        "openmp", lower_to_scf=True, execution_mode="vectorize",
        schedule=schedule, chunk_size=chunk_size,
    )
    baseline = None
    for threads in thread_counts:
        interp = compiled.interpreter(threads=threads)
        args = make_args()
        interp.call(entry, *args)  # warm-up: compiles + binds the kernels
        best = float("inf")
        for _ in range(repeats):
            args = make_args()
            start = time.perf_counter()
            interp.call(entry, *args)
            best = min(best, time.perf_counter() - start)
        if baseline is None:
            baseline = best
        result.add(benchmark, threads, best, cells / best / 1e6, baseline / best)
        result.notes[f"threads={threads}"] = {
            "parallel_sweeps": interp.stats["parallel_sweeps"],
            "parallel_tiles": interp.stats["parallel_tiles"],
            "parallel_fallbacks": interp.stats["parallel_fallbacks"],
        }
    return result


def _openmp_figure(benchmark: str, figure: str,
                   measure_threads: Sequence[int] = (),
                   measure_n: int = 64) -> ExperimentResult:
    kernel = _KERNELS[benchmark]
    result = ExperimentResult(
        experiment=figure,
        description=f"OpenMP scaling of {benchmark} at 2.1 billion cells",
        columns=("benchmark", "threads", "compiler", "mcells_per_s"),
    )
    model = CPUCostModel()
    cells = _PAPER_SIZES["1290^3 (2.1B)"]
    for threads in _THREAD_COUNTS:
        for profile in (CRAY_PROFILE, FLANG_PROFILE, STENCIL_PROFILE):
            result.add(
                benchmark, threads, profile.name,
                model.throughput_mcells(kernel, profile, cells, threads=threads),
            )
    if measure_threads:
        # Real tiled-parallel runs on a reduced grid, reported next to the
        # model series (labelled "stencil-measured"; absolute numbers are not
        # comparable to the paper-scale model rows, the *scaling shape* is).
        measured = measured_openmp_scaling(
            benchmark, thread_counts=tuple(measure_threads), n=measure_n
        )
        for _, threads, seconds, mcells, speedup in measured.rows:
            result.add(benchmark, threads, "stencil-measured", mcells)
        result.notes["measured"] = {
            "grid_n": measure_n,
            "speedups": {row[1]: row[4] for row in measured.rows},
            **measured.notes,
        }
    return result


def figure3_openmp_gauss_seidel(
    measure_threads: Sequence[int] = (), measure_n: int = 64
) -> ExperimentResult:
    """Multithreaded Gauss-Seidel (Figure 3).  ``measure_threads`` adds
    measured tiled-parallel rows next to the model-predicted series."""
    return _openmp_figure("gauss_seidel", "figure3", measure_threads, measure_n)


def figure4_openmp_pw_advection(
    measure_threads: Sequence[int] = (), measure_n: int = 64
) -> ExperimentResult:
    """Multithreaded PW advection (Figure 4): stencil overtakes at 64/128
    threads.  ``measure_threads`` adds measured tiled-parallel rows."""
    return _openmp_figure("pw_advection", "figure4", measure_threads, measure_n)


# ---------------------------------------------------------------------------
# Figure 5: GPU
# ---------------------------------------------------------------------------


def measured_gpu_scaling(
    strategies: Sequence[str] = ("optimised", "host_register"),
    n: int = 24,
    niters: int = 2,
    repeats: int = 3,
    streams: int = 2,
) -> ExperimentResult:
    """*Measured* throughput of the vectorized GPU execution engine.

    Unlike the analytic Figure 5 series this actually executes the fully
    lowered GPU target: the module is compiled with ``lower_to_scf=True`` —
    tiling, GPU mapping and kernel outlining, exactly the paper's Listing 4
    pipeline — and every ``gpu.launch_func`` runs through
    :class:`repro.runtime.GpuKernelEngine`'s batched whole-lattice NumPy
    kernels (best-of-``repeats`` wall clock) against the simulated V100's
    stream timeline.  Every row is validated against the global NumPy
    reference to < 1e-12 (a violation raises, so the scaling series doubles
    as a functional gate), and the notes record the device summary — PCIe
    traffic, per-kernel invocation counts, modelled stream span/overlap — per
    strategy.
    """
    result = ExperimentResult(
        experiment="measured_gpu",
        description=(
            f"Measured vectorized GPU engine throughput of lowered "
            f"Gauss-Seidel (n={n}, {niters} sweeps, {streams} streams)"
        ),
        columns=("strategy", "seconds", "mcells_per_s", "launches",
                 "vectorized_launches", "max_error"),
    )
    source = gauss_seidel.generate_source(n, niters=niters)
    init = gauss_seidel.initial_condition(n)
    reference = gauss_seidel.reference_jacobi(init, niters)
    cells = (n - 2) ** 3 * niters
    for strategy in strategies:
        compiled = _SESSION.compile(source).lower(
            "gpu", data_strategy=strategy, lower_to_scf=True,
            execution_mode="vectorize", streams=streams,
        )
        # One interpreter per strategy: the warm-up call compiles and binds
        # the launch kernels, so the timed repeats measure the engine, not
        # interpreter construction or codegen.
        interp = compiled.interpreter()
        interp.call("gauss_seidel", init.copy(order="F"))
        best_seconds = float("inf")
        best_work = None
        for _ in range(repeats):
            work = init.copy(order="F")
            start = time.perf_counter()
            interp.call("gauss_seidel", work)
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_seconds, best_work = seconds, work
        work = best_work
        error = float(np.abs(work - reference).max())
        if error >= 1e-12:
            raise ValueError(
                f"measured GPU run ({strategy}) diverged from the NumPy "
                f"reference: max error {error:g}"
            )
        result.add(strategy, best_seconds, cells / best_seconds / 1e6,
                   interp.stats["kernel_launches"],
                   interp.stats["gpu_launches_vectorized"], error)
        result.notes[strategy] = {
            "gpu_seconds": interp.stats["gpu_seconds"],
            "transfer_seconds": interp.stats["transfer_seconds"],
            "gpu_launch_fallbacks": interp.stats["gpu_launch_fallbacks"],
            **interp.gpu.summary(),
        }
    return result


def figure5_gpu(validate: bool = True,
                measure: Optional[bool] = None) -> ExperimentResult:
    """V100 throughput for both benchmarks and three data strategies (Figure 5).

    ``measure`` (default: follows ``validate``) adds a *measured* series —
    the vectorized GPU engine executing the fully lowered Gauss-Seidel per
    data strategy, labelled ``measured_<strategy>`` — next to the cost-model
    rows, every measured row validated < 1e-12 against the NumPy reference.
    """
    result = ExperimentResult(
        experiment="figure5",
        description="GPU performance: OpenACC/Nvidia vs stencil initial vs optimised data",
        columns=("benchmark", "problem_size", "strategy", "mcells_per_s"),
    )
    model = GPUCostModel()
    for bench_name, kernel in _KERNELS.items():
        for size_label, cells in _GPU_SIZES.items():
            for strategy in (STRATEGY_OPENACC_UNIFIED, STRATEGY_HOST_REGISTER,
                             STRATEGY_OPTIMISED):
                result.add(
                    bench_name, size_label, strategy.name,
                    model.throughput_mcells(kernel, strategy, cells),
                )
    if measure is None:
        measure = validate
    if measure:
        # Real vectorized-engine runs on a reduced grid (absolute numbers are
        # not comparable to the paper-scale model rows; the strategy ordering
        # and the < 1e-12 validation are what matter).
        measured = measured_gpu_scaling()
        for strategy, seconds, mcells, *_ in measured.rows:
            result.add("gauss_seidel", "24^3 (measured)",
                       f"measured_{strategy}", mcells)
        result.notes["measured"] = {
            "max_error": max(row[5] for row in measured.rows),
            **measured.notes,
        }
    if validate:
        result.notes["transfer_validation"] = gpu_data_ablation(n=10, niters=3).notes
    return result


def gpu_data_ablation(n: int = 10, niters: int = 3) -> ExperimentResult:
    """Ablation E8: run both GPU data strategies for real on a small grid and
    compare the PCIe traffic the simulated device records."""
    result = ExperimentResult(
        experiment="gpu_data_ablation",
        description="Observed PCIe traffic per data-management strategy",
        columns=("strategy", "kernel_launches", "h2d_bytes", "d2h_bytes", "on_demand_bytes"),
    )
    source = gauss_seidel.generate_source(n, niters=niters)
    for strategy in ("optimised", "host_register"):
        compiled = _SESSION.compile(source).lower("gpu", data_strategy=strategy)
        gpu_device = SimulatedGPU()
        interp = compiled.interpreter(gpu=gpu_device)
        data = gauss_seidel.initial_condition(n)
        interp.call("gauss_seidel", data.copy(order="F"))
        summary = gpu_device.summary()
        result.add(strategy, summary["launches"], summary["h2d_bytes"],
                   summary["d2h_bytes"], summary["on_demand_bytes"])
        result.notes[strategy] = summary
    return result


# ---------------------------------------------------------------------------
# Figure 6: distributed memory
# ---------------------------------------------------------------------------


_NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


#: Simulated-rank process grids for the measured distributed series (1→8
#: vectorized in-process ranks).
_MEASURED_RANK_GRIDS = ((1, 1), (2, 1), (2, 2), (4, 2))


def _distributed_plan(grid: Tuple[int, int], global_shape: Tuple[int, int, int],
                      pool_size=None):
    """A vectorized multi-rank execution plan for the Gauss-Seidel kernel.

    The base program is generated at rank 0's padded local shape for this
    (grid, global shape), so the base compile *is* one of the per-shape
    artifacts the run needs — the ``source_builder`` then only compiles the
    remaining distinct shapes (none at all when the domain divides evenly).
    """
    from ..runtime.mpi_runtime import CartesianDecomposition

    decomposition = CartesianDecomposition(
        tuple(global_shape), tuple(grid), tuple(range(len(grid)))
    )
    rank0_padded = tuple(ub - lb + 2 for lb, ub in decomposition.local_bounds(0))
    program = _SESSION.compile(
        gauss_seidel.generate_source_shaped(rank0_padded, niters=1)
    )
    return program.lower("dmp", grid=grid, execution_mode="vectorize").distribute(
        source_builder=gauss_seidel.generate_source_shaped, pool_size=pool_size,
    )


def measured_distributed_scaling(
    rank_grids: Sequence[Tuple[int, int]] = _MEASURED_RANK_GRIDS,
    n: int = 24,
    niters: int = 2,
    repeats: int = 2,
) -> ExperimentResult:
    """*Measured* multi-rank throughput of the DMP/MPI-lowered target.

    Unlike the analytic Figure 6 series this actually executes the lowered
    modules: one vectorized interpreter per simulated rank runs concurrently
    on the :class:`repro.runtime.DistributedExecutor` rank pool with real
    halo exchanges through the simulated communicator (best-of-``repeats``
    wall clock).  Every row carries the max interior error against the
    global Jacobi reference, so the scaling series doubles as a functional
    validation of the halo exchange at every rank count.
    """
    result = ExperimentResult(
        experiment="measured_distributed",
        description=(
            f"Measured multi-rank scaling of distributed Gauss-Seidel "
            f"(n={n}, {niters} sweeps, vectorized ranks)"
        ),
        columns=("ranks", "grid", "seconds", "mcells_per_s",
                 "speedup_vs_first", "max_interior_error"),
    )
    rng = np.random.default_rng(3)
    global_field = np.asfortranarray(rng.random((n, n, n)))
    reference = gauss_seidel.reference_jacobi(global_field, niters)
    cells = n**3 * niters
    baseline = None
    for grid in rank_grids:
        plan = _distributed_plan(tuple(grid), (n, n, n))
        plan.run(global_field, iterations=1)  # warm-up: compile + bind kernels
        best = None
        for _ in range(repeats):
            run = plan.run(global_field, iterations=niters)
            if best is None or run.seconds < best.seconds:
                best = run
        error = best.max_interior_error(reference, margin=niters)
        if baseline is None:
            baseline = best.seconds
        result.add(best.ranks, "x".join(map(str, grid)), best.seconds,
                   cells / best.seconds / 1e6, baseline / best.seconds, error)
        result.notes[f"ranks={best.ranks}"] = {
            "messages": best.messages,
            "bytes": best.bytes,
            "halo_seconds": sum(s.halo_seconds for s in best.rank_stats),
            "kernel_seconds": sum(s.kernel_seconds for s in best.rank_stats),
        }
    return result


def figure6_distributed(validate: bool = True,
                        measure_grids: Sequence[Tuple[int, int]] = _MEASURED_RANK_GRIDS,
                        measure_n: int = 24) -> ExperimentResult:
    """Distributed-memory Gauss-Seidel scaling on up to 64 nodes (Figure 6).

    The paper-scale series comes from the cost model; ``measure_grids`` adds
    a *measured* multi-rank series (vectorized in-process ranks with real
    halo exchanges, labelled ``stencil_measured``) next to it, each row
    validated against the global reference.
    """
    result = ExperimentResult(
        experiment="figure6",
        description="Distributed Gauss-Seidel, hand-parallelised vs auto (DMP/MPI)",
        columns=("nodes", "ranks", "variant", "mcells_per_s"),
    )
    model = DistributedCostModel()
    global_cells = 17e9
    for nodes in _NODE_COUNTS:
        ranks = nodes * 128
        hand = model.throughput_mcells(GAUSS_SEIDEL_KERNEL, CRAY_PROFILE,
                                       global_cells, ranks)
        auto = model.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                       global_cells, ranks, comm_efficiency=0.35)
        result.add(nodes, ranks, "hand_parallelised", hand)
        result.add(nodes, ranks, "stencil_auto_parallelised", auto)
    if measure_grids:
        # Real in-process multi-rank runs on a reduced grid (absolute numbers
        # are not comparable to the paper-scale model rows; the scaling shape
        # and the interior error are what matter).
        measured = measured_distributed_scaling(tuple(measure_grids),
                                                n=measure_n)
        for ranks, grid, seconds, mcells, speedup, error in measured.rows:
            result.add("sim", ranks, "stencil_measured", mcells)
        result.notes["measured"] = {
            "grid_n": measure_n,
            "max_interior_error": max(row[5] for row in measured.rows),
            "speedups": {row[0]: row[4] for row in measured.rows},
            **measured.notes,
        }
    if validate:
        result.notes["functional_validation"] = distributed_functional_check()
    return result


def distributed_functional_check(n_local: int = 8, ranks: Tuple[int, int] = (2, 2),
                                 niters: int = 2,
                                 pool_size=None) -> Dict[str, float]:
    """Run the DMP/MPI-lowered Gauss-Seidel on a simulated communicator and
    compare against the single-process Jacobi reference on the global domain.

    Now a thin wrapper over the :class:`repro.api.DistributedProgram` flow:
    the executor owns scatter (with physical ghost-plane fill), concurrent
    vectorized rank execution, halo exchange and gather.  The comparison
    region excludes cells within ``niters`` of the global boundary — the
    local kernels update every owned cell (including global-boundary ones)
    whereas the reference keeps boundaries fixed, and that difference
    propagates inwards one cell per sweep; everything further in is
    identical whenever the halo exchanges are correct.
    """
    grid = tuple(ranks)
    global_shape = (n_local * grid[0], n_local * grid[1], n_local)
    rng = np.random.default_rng(3)
    global_field = np.asfortranarray(rng.random(global_shape))
    reference = gauss_seidel.reference_jacobi(global_field, niters)

    plan = _distributed_plan(grid, global_shape, pool_size=pool_size)
    run = plan.run(global_field, iterations=niters)

    margin = niters
    compared = 1
    for extent in global_shape:
        compared *= max(0, extent - 2 * margin)
    return {
        "max_interior_error": run.max_interior_error(reference, margin),
        "ranks": run.ranks,
        "compared_cells": compared,
        "messages": run.messages,
        "bytes": run.bytes,
        "halo_seconds": sum(s.halo_seconds for s in run.rank_stats),
        "kernel_seconds": sum(s.kernel_seconds for s in run.rank_stats),
    }


# ---------------------------------------------------------------------------
# Ablation E9: stencil fusion on/off for PW advection
# ---------------------------------------------------------------------------


def fusion_ablation(n: int = 10) -> ExperimentResult:
    """Compare the stencil module with and without fusion (E9)."""
    result = ExperimentResult(
        experiment="fusion_ablation",
        description="PW advection with and without stencil fusion",
        columns=("variant", "stencil_applies", "modelled_mcells_per_s"),
    )
    model = CPUCostModel()
    source = pw_advection.generate_source(n)
    for fuse in (True, False):
        compiled = _SESSION.compile(source).lower("cpu", fuse_stencils=fuse)
        applies = sum(
            1 for op in compiled.stencil_module.walk() if op.name == "stencil.apply"
        )
        kernel = PW_ADVECTION_KERNEL
        if fuse:
            mcells = model.throughput_mcells(kernel, STENCIL_PROFILE, 512**3, 128)
        else:
            unfused = STENCIL_PROFILE
            # Without fusion the stencil flow pays the same three-pass traffic
            # as the separately compiled loops.
            from ..runtime.cost_model import CompilerProfile

            unfused = CompilerProfile(
                name="cray", flop_efficiency=STENCIL_PROFILE.flop_efficiency,
                bandwidth_efficiency=STENCIL_PROFILE.bandwidth_efficiency,
                ops_per_access=STENCIL_PROFILE.ops_per_access,
            )
            mcells = model.throughput_mcells(kernel, unfused, 512**3, 128)
        result.add("fused" if fuse else "unfused", applies, mcells)
    return result


ALL_EXPERIMENTS = {
    "figure2": figure2_single_core,
    "figure3": figure3_openmp_gauss_seidel,
    "figure4": figure4_openmp_pw_advection,
    # measured_gpu_scaling is not registered standalone: figure5 reports it
    # (like measured_distributed_scaling inside figure6), and a registry
    # entry would make run_all pay the wall-clock benchmark twice.
    "figure5": figure5_gpu,
    "figure6": figure6_distributed,
    "gpu_data_ablation": gpu_data_ablation,
    "fusion_ablation": fusion_ablation,
}


__all__ = [
    "ExperimentResult",
    "harness_session",
    "figure2_single_core",
    "figure3_openmp_gauss_seidel",
    "figure4_openmp_pw_advection",
    "measured_openmp_scaling",
    "figure5_gpu",
    "measured_gpu_scaling",
    "figure6_distributed",
    "measured_distributed_scaling",
    "gpu_data_ablation",
    "fusion_ablation",
    "distributed_functional_check",
    "ALL_EXPERIMENTS",
]
