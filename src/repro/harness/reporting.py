"""Plain-text reporting of experiment results (the rows the paper plots)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

if TYPE_CHECKING:  # pragma: no cover
    from .experiments import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_table(result: "ExperimentResult") -> str:
    """Render an ExperimentResult as an aligned text table."""
    header = [str(c) for c in result.columns]
    rows = [[_format_value(v) for v in row] for row in result.rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        f"# {result.experiment}: {result.description}",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if result.notes:
        lines.append("")
        for key, value in result.notes.items():
            lines.append(f"  note[{key}] = {value}")
    return "\n".join(lines)


def kernel_stats_table(kernels) -> str:
    """Render per-kernel runtime statistics as an aligned text table,
    slowest kernels first.

    Accepts anything exposing ``stats["per_kernel"]`` mapping a kernel label
    to invocation count and cumulative wall time — a
    :class:`repro.runtime.KernelCompiler` (CPU/OpenMP sweeps and the
    vectorized GPU launch engine, recorded by the interpreter around every
    sweep) or a :class:`repro.runtime.SimulatedGPU` (per-launch wall time by
    kernel name)."""
    from .experiments import ExperimentResult

    result = ExperimentResult(
        experiment="kernel_stats",
        description="per-kernel runtime statistics",
        columns=("kernel", "invocations", "total_s", "mean_ms"),
    )
    per_kernel = dict(kernels.stats.get("per_kernel", {}))
    for label, entry in sorted(per_kernel.items(),
                               key=lambda item: -item[1]["seconds"]):
        invocations = int(entry["invocations"])
        seconds = float(entry["seconds"])
        # Pre-formatted strings: sweep times are often sub-millisecond, below
        # format_table's generic two-decimal float rendering.
        result.add(label, invocations, f"{seconds:.4f}",
                   f"{seconds / invocations * 1e3:.3f}" if invocations else "-")
    if not result.rows:
        result.notes["empty"] = "no kernels executed"
    return format_table(result)


def fuzz_summary_table(report) -> str:
    """Render a :class:`repro.fuzz.FuzzReport` as an aligned text table:
    one row per backend (runs, divergences, interpreter fallbacks) plus
    totals, session cache counters and timing in the notes."""
    from .experiments import ExperimentResult

    result = ExperimentResult(
        experiment="fuzz_summary",
        description=(f"{report.cases} cases x differential matrix "
                     f"({report.configs_run} configurations)"),
        columns=("backend", "runs", "divergences", "fallbacks"),
    )
    for backend in sorted(report.per_backend):
        counters = report.per_backend[backend]
        result.add(backend, counters["runs"], counters["divergences"],
                   counters["fallbacks"])
    if not result.rows:
        result.notes["empty"] = "no cases executed"
    result.notes["divergences"] = len(report.divergences)
    result.notes["seconds"] = f"{report.seconds:.2f}"
    if report.cache_stats:
        result.notes["cache"] = (
            f"{report.cache_stats.get('hits', 0)} hits, "
            f"{report.cache_stats.get('misses', 0)} misses, "
            f"{report.cache_stats.get('artifacts', 0)} artifacts")
        if "disk_hits" in report.cache_stats:
            result.notes["cache"] += (
                f", {report.cache_stats['disk_hits']} disk hits")
    if report.budget_exhausted:
        result.notes["time_budget"] = (
            f"exhausted, {report.seeds_skipped} seeds skipped")
    return format_table(result)


def service_metrics_table(metrics) -> str:
    """Render a :class:`repro.serve.ServiceMetrics` snapshot as an aligned
    text table: request/coalescing/backpressure counters, the cache layers
    (memory, disk, true backend lowers) and per-stage latency percentiles.
    """
    from .experiments import ExperimentResult

    result = ExperimentResult(
        experiment="service_metrics",
        description="compile/run service counters and stage latencies",
        columns=("counter", "value"),
    )
    result.add("submitted_compiles", metrics.submitted_compiles)
    result.add("submitted_runs", metrics.submitted_runs)
    result.add("completed", metrics.completed)
    result.add("failed", metrics.failed)
    result.add("coalesced", metrics.coalesced)
    result.add("rejected", metrics.rejected)
    result.add("timeouts", metrics.timeouts)
    result.add("flights_claimed", metrics.flights_claimed)
    result.add("queue_depth_high_water", metrics.queue_depth_high_water)
    result.add("memory_hits", metrics.memory_hits)
    result.add("disk_hits", metrics.disk_hits)
    result.add("lowers (misses)", metrics.misses)
    result.add("artifacts", metrics.artifacts)
    for stage in sorted(metrics.latency):
        sample = metrics.latency[stage]
        if not sample.get("count"):
            continue
        result.add(
            f"latency[{stage}]",
            (f"p50 {sample['p50'] * 1e3:.2f}ms / "
             f"p90 {sample['p90'] * 1e3:.2f}ms / "
             f"p99 {sample['p99'] * 1e3:.2f}ms "
             f"(n={sample['count']})"),
        )
    if metrics.store:
        store = metrics.store
        result.notes["store"] = (
            f"{store.get('hits', 0)} hits, {store.get('misses', 0)} misses, "
            f"{store.get('writes', 0)} writes, "
            f"{store.get('corrupt_entries', 0)} corrupt, "
            f"{store.get('evictions', 0)} evicted")
    return format_table(result)


def recovery_report_table(report) -> str:
    """Render a chaos run's recovery accounting as an aligned text table.

    Accepts a :class:`repro.fuzz.ChaosReport` (the farm's aggregate — cases,
    scenarios and timing land in the notes) or a bare
    :class:`repro.resilience.RecoveryReport` from a single resilient run.
    One row per injected fault kind and per non-zero recovery mechanism, so
    the table answers the chaos question at a glance: everything injected,
    and everything the runtime did to survive it.
    """
    from .experiments import ExperimentResult

    recovery = getattr(report, "recovery", report)
    result = ExperimentResult(
        experiment="chaos_recovery",
        description="injected faults vs recovery mechanisms exercised",
        columns=("counter", "count"),
    )
    for kind in sorted(recovery.injected):
        result.add(f"injected[{kind}]", recovery.injected[kind])
    for name in recovery._COUNTER_FIELDS:
        value = getattr(recovery, name)
        if value or name == "unrecovered":
            result.add(name, value)
    if not recovery.injected:
        result.notes["empty"] = "no faults injected"
    if report is not recovery:  # a ChaosReport aggregate
        result.notes["cases"] = report.cases
        result.notes["scenarios"] = report.scenarios_run
        result.notes["divergences"] = len(report.divergences)
        result.notes["seconds"] = f"{report.seconds:.2f}"
        if report.budget_exhausted:
            result.notes["time_budget"] = (
                f"exhausted, {report.seeds_skipped} seeds skipped")
    result.notes["verdict"] = (
        "clean" if getattr(report, "ok", recovery.ok) else "NOT RECOVERED")
    return format_table(result)


def run_all(names: Iterable[str] = ()) -> str:
    """Run the requested experiments (all by default) and return their tables.

    The final line reports the shared harness session's measured artifact
    cache counters: experiments that recompile a (source, backend, options)
    combination another experiment already compiled — e.g. the GPU data
    ablation running standalone and again inside Figure 5 — hit the cache
    instead of re-running discovery/extraction.
    """
    from .experiments import ALL_EXPERIMENTS, harness_session

    names = list(names) or list(ALL_EXPERIMENTS)
    sections: List[str] = []
    for name in names:
        sections.append(format_table(ALL_EXPERIMENTS[name]()))
    stats = harness_session().cache_stats
    sections.append(
        f"# session artifact cache: {stats['hits']} hits, "
        f"{stats['misses']} misses, {stats['artifacts']} artifacts"
    )
    return "\n\n".join(sections)


__all__ = ["format_table", "fuzz_summary_table", "kernel_stats_table",
           "recovery_report_table", "run_all"]
