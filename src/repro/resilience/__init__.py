"""Deterministic fault injection and recovery.

The package has three halves mirroring the tentpole: *plans* (what fails,
when — :class:`FaultPlan` and its fault dataclasses), the *injector* that
executes a plan against live runtime hooks, and the *report* that proves
every injected fault was recovered.  Policy knobs live in
:class:`ResilienceOptions`, accepted by
:meth:`repro.api.CompiledProgram.distribute`.
"""

from .faults import (
    COMM_FAULT_KINDS,
    AllocFault,
    CommFault,
    CompileFault,
    FaultPlan,
    FaultPlanError,
    RankCrash,
)
from .injector import FaultInjector, InjectedFault
from .options import ResilienceError, ResilienceOptions
from .report import RecoveryReport, ReportSink

__all__ = [
    "COMM_FAULT_KINDS",
    "AllocFault",
    "CommFault",
    "CompileFault",
    "FaultPlan",
    "FaultPlanError",
    "RankCrash",
    "FaultInjector",
    "InjectedFault",
    "ResilienceError",
    "ResilienceOptions",
    "RecoveryReport",
    "ReportSink",
]
