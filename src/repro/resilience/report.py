"""Recovery accounting: what was injected, what was survived, and how.

Every resilient component keeps plain integer counters while it runs (the
communicator's retry/retransmit counts, the device pool's degradation
rungs, the session's compile retries); a :class:`RecoveryReport` is where
those counters meet the injector's record of *injected* faults, so one
object answers the chaos question: were all injected faults detected and
recovered, and by which mechanism?  Rendered as an aligned text table by
:func:`repro.harness.recovery_report_table`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RecoveryReport:
    """Counters for one run (or one merged chaos campaign).

    ``injected`` counts faults by kind as the injector fires them
    (``drop``/``delay``/``duplicate``/``corrupt``/``crash``/``alloc``/
    ``compile``); the mechanism counters below count the recovery work the
    runtime actually performed.  ``unrecovered`` counts faults that
    exhausted their recovery budget — a chaos run is clean only when it is
    zero *and* no divergence was found.
    """

    injected: Dict[str, int] = field(default_factory=dict)
    #: Communicator mechanisms.
    receive_retries: int = 0
    retransmissions: int = 0
    duplicates_dropped: int = 0
    corruptions_detected: int = 0
    delays_released: int = 0
    #: Checkpoint/restart mechanisms.
    checkpoint_saves: int = 0
    checkpoint_restores: int = 0
    rank_respawns: int = 0
    crashes_detected: int = 0
    #: GPU degradation ladder rungs.
    oom_detected: int = 0
    oom_evictions: int = 0
    oom_host_staged: int = 0
    scalar_fallbacks: int = 0
    #: Session compile resilience.
    compile_retries: int = 0
    compiles_quarantined: int = 0
    quarantine_hits: int = 0
    #: Faults that defeated every recovery mechanism.
    unrecovered: int = 0
    #: Human-readable event trail (bounded by the caller's appetite).
    events: List[str] = field(default_factory=list)

    _COUNTER_FIELDS = (
        "receive_retries", "retransmissions", "duplicates_dropped",
        "corruptions_detected", "delays_released", "checkpoint_saves",
        "checkpoint_restores", "rank_respawns", "crashes_detected",
        "oom_detected", "oom_evictions", "oom_host_staged",
        "scalar_fallbacks", "compile_retries", "compiles_quarantined",
        "quarantine_hits", "unrecovered",
    )

    @property
    def faults_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def ok(self) -> bool:
        """No fault defeated its recovery path."""
        return self.unrecovered == 0

    def record_injected(self, kind: str, detail: str = "") -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if detail:
            self.events.append(f"injected {kind}: {detail}")

    def record_event(self, message: str) -> None:
        self.events.append(message)

    def add_counters(self, counters: Dict[str, int]) -> None:
        """Fold a component's stats dict into the matching counters; unknown
        keys are ignored so components can keep extra private stats."""
        for name in self._COUNTER_FIELDS:
            if name in counters:
                setattr(self, name, getattr(self, name) + int(counters[name]))

    def merge(self, other: "RecoveryReport") -> None:
        for kind, count in other.injected.items():
            self.injected[kind] = self.injected.get(kind, 0) + count
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.events.extend(other.events)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"injected": dict(self.injected)}
        for name in self._COUNTER_FIELDS:
            data[name] = getattr(self, name)
        return data

    def summary_line(self) -> str:
        return (f"{self.faults_injected} faults injected, "
                f"{self.unrecovered} unrecovered "
                f"(retries={self.receive_retries} "
                f"retransmits={self.retransmissions} "
                f"restores={self.checkpoint_restores} "
                f"degradations={self.oom_evictions + self.oom_host_staged} "
                f"compile_retries={self.compile_retries})")


class ReportSink:
    """Thread-safe shared report: rank tasks, pool callbacks and the session
    may record concurrently during one resilient run."""

    def __init__(self, report: RecoveryReport = None):
        self.report = report if report is not None else RecoveryReport()
        self._lock = threading.Lock()

    def record_injected(self, kind: str, detail: str = "") -> None:
        with self._lock:
            self.report.record_injected(kind, detail)

    def record_event(self, message: str) -> None:
        with self._lock:
            self.report.record_event(message)

    def add_counters(self, counters: Dict[str, int]) -> None:
        with self._lock:
            self.report.add_counters(counters)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self.report, name, getattr(self.report, name) + amount)


__all__ = ["RecoveryReport", "ReportSink"]
