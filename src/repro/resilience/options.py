"""Recovery policy knobs, surfaced as ``.distribute(..., resilience=...)``.

``ResilienceOptions`` is runtime-only in the same sense as ``threads``: it
never enters the session cache key, because it changes how a run survives
faults, not what the compiled artifact computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .faults import FaultPlan


class ResilienceError(ValueError):
    """Invalid resilience configuration."""


@dataclass(frozen=True)
class ResilienceOptions:
    """Recovery policy for one resilient run.

    ``checkpoint_interval`` is in distributed iterations (1 = checkpoint
    every iteration boundary); ``max_restarts`` bounds how many rollbacks a
    run may perform before giving up; the backoff pair shapes the
    communicator's receive retry loop.  ``plan`` optionally attaches a
    :class:`FaultPlan` so tests and chaos runs configure injection and
    recovery in one object.
    """

    checkpoint_interval: int = 1
    max_restarts: int = 3
    max_receive_retries: int = 8
    backoff_initial: float = 0.005
    backoff_cap: float = 0.05
    plan: Optional[FaultPlan] = field(default=None)

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ResilienceError(
                "checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}")
        if self.max_restarts < 0:
            raise ResilienceError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.max_receive_retries < 1:
            raise ResilienceError(
                "max_receive_retries must be >= 1, got "
                f"{self.max_receive_retries}")
        if self.backoff_initial <= 0:
            raise ResilienceError(
                f"backoff_initial must be > 0, got {self.backoff_initial}")
        if self.backoff_cap < self.backoff_initial:
            raise ResilienceError(
                f"backoff_cap ({self.backoff_cap}) must be >= "
                f"backoff_initial ({self.backoff_initial})")
        if self.plan is not None and not isinstance(self.plan, FaultPlan):
            raise ResilienceError(
                f"plan must be a FaultPlan, got {type(self.plan).__name__}")


__all__ = ["ResilienceOptions", "ResilienceError"]
