"""The live side of a :class:`FaultPlan`: decide, at each instrumented
runtime point, whether the plan says this event should fail.

A :class:`FaultInjector` is handed to the components it targets (the
communicator's ``fault_hook``, the device pool's ``alloc_hook``, the
session's ``compile_hook``, the executor's crash schedule) and consulted
inline.  It is thread-safe — rank tasks fire sends concurrently — and
stateful: each comm fault fires exactly once, alloc/compile faults count
global attempt indices.  Everything it injects is recorded on its
:class:`~repro.resilience.report.ReportSink` so the chaos runner can match
injections against recoveries.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from .faults import FaultPlan
from .report import ReportSink


class FaultInjector:
    """Consults a :class:`FaultPlan` and tracks which faults have fired."""

    def __init__(self, plan: FaultPlan, sink: Optional[ReportSink] = None):
        self.plan = plan
        self.sink = sink if sink is not None else ReportSink()
        self._lock = threading.Lock()
        #: Per-comm-fault count of sends matching that fault's filter.
        self._match_counts: Dict[int, int] = {}
        self._fired_comm: Set[int] = set()
        self._fired_crashes: Set[int] = set()
        self._alloc_attempts = 0
        self._compile_attempts = 0

    @property
    def report(self):
        return self.sink.report

    # -- communicator ------------------------------------------------------

    def on_send(self, source: int, dest: int, tag: int) -> Optional[str]:
        """Return a fault kind to apply to this send, or None.

        Each plan entry fires on the Nth send matching its filter and then
        never again; when several faults would fire on the same send, the
        first unfired one in plan order wins and the others keep waiting
        for their own later matches.
        """
        with self._lock:
            chosen: Optional[str] = None
            for i, fault in enumerate(self.plan.comm_faults):
                if not fault.matches(source, dest, tag):
                    continue
                count = self._match_counts.get(i, 0)
                self._match_counts[i] = count + 1
                if (chosen is None and i not in self._fired_comm
                        and count == fault.match_index):
                    self._fired_comm.add(i)
                    chosen = fault.kind
        if chosen is not None:
            self.sink.record_injected(
                chosen, f"message src={source} dest={dest} tag={tag}")
        return chosen

    # -- distributed executor ----------------------------------------------

    def should_crash(self, rank: int, iteration: int) -> bool:
        """True once per plan entry when ``rank`` reaches ``iteration``."""
        with self._lock:
            hit = None
            for i, crash in enumerate(self.plan.rank_crashes):
                if (i not in self._fired_crashes and crash.rank == rank
                        and crash.iteration == iteration):
                    self._fired_crashes.add(i)
                    hit = crash
                    break
        if hit is not None:
            self.sink.record_injected(
                "crash", f"rank {rank} at iteration {iteration}")
            return True
        return False

    # -- device memory pool ------------------------------------------------

    def on_device_alloc(self, label: str = "") -> bool:
        """True when the plan fails this (globally indexed) allocation."""
        with self._lock:
            index = self._alloc_attempts
            self._alloc_attempts += 1
            fail = any(f.index <= index < f.index + f.count
                       for f in self.plan.alloc_faults)
        if fail:
            self.sink.record_injected(
                "alloc", f"allocation #{index}"
                         + (f" ({label})" if label else ""))
        return fail

    # -- session compiles --------------------------------------------------

    def on_compile(self, fingerprint: str = "") -> bool:
        """True when the plan fails this (globally indexed) compile."""
        with self._lock:
            index = self._compile_attempts
            self._compile_attempts += 1
            fail = any(f.index <= index < f.index + f.count
                       for f in self.plan.compile_faults)
        if fail:
            self.sink.record_injected(
                "compile", f"compile #{index}"
                           + (f" ({fingerprint[:12]})" if fingerprint else ""))
        return fail


class InjectedFault(RuntimeError):
    """Raised by injection hooks that simulate hard failures (a transient
    compiler crash, a simulated rank process death)."""


__all__ = ["FaultInjector", "InjectedFault"]
