"""Deterministic fault plans.

A :class:`FaultPlan` is the resilience analogue of
:class:`repro.fuzz.GeneratorConfig`: a frozen, JSON round-trippable value
whose contents fully determine which runtime faults are injected where.
Replaying a serialized plan against the same program reproduces exactly the
same fault sequence — the property the chaos fuzz farm and every recovery
unit test rely on ("inject deterministically, demand bitwise-identical
recovery", the PR 6 discipline extended from miscompiles to runtime faults).

Four fault families mirror the four runtime layers that can fail:

* :class:`CommFault` — drop / delay / duplicate / corrupt the Nth matching
  halo message inside :class:`repro.runtime.SimulatedCommunicator`;
* :class:`RankCrash` — kill one simulated rank at a chosen iteration inside
  :class:`repro.runtime.DistributedExecutor`;
* :class:`AllocFault` — fail the Nth device allocation of a
  :class:`repro.runtime.DeviceMemoryPool` (transiently, for ``count``
  consecutive attempts);
* :class:`CompileFault` — fail the Nth compile of a
  :class:`repro.api.Session` (``count`` = 1 is transient and recovered by
  the session's single retry; ``count`` >= 2 exhausts the retry and
  quarantines the source).

``FaultPlan.generate(seed, ...)`` draws a randomized-but-deterministic plan
from a seed, which is how ``python -m repro.fuzz --chaos`` schedules faults
per fuzz case.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Message-level fault kinds understood by the communicator.
COMM_FAULT_KINDS = ("drop", "delay", "duplicate", "corrupt")


class FaultPlanError(ValueError):
    """An invalid fault description (unknown kind, negative index, ...)."""


@dataclass(frozen=True)
class CommFault:
    """Perturb the Nth send matching a (source, dest, tag) filter.

    ``-1`` in any filter field matches every value; ``match_index`` counts
    matching sends from 0, so ``CommFault("drop", 3)`` drops the fourth
    message of the run.  Each fault fires exactly once.
    """

    kind: str
    match_index: int
    source: int = -1
    dest: int = -1
    tag: int = -1

    def __post_init__(self) -> None:
        if self.kind not in COMM_FAULT_KINDS:
            raise FaultPlanError(
                f"comm fault kind must be one of {COMM_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.match_index < 0:
            raise FaultPlanError(
                f"match_index must be >= 0, got {self.match_index}"
            )

    def matches(self, source: int, dest: int, tag: int) -> bool:
        return ((self.source < 0 or self.source == source)
                and (self.dest < 0 or self.dest == dest)
                and (self.tag < 0 or self.tag == tag))


@dataclass(frozen=True)
class RankCrash:
    """Crash ``rank`` at the start of distributed iteration ``iteration``."""

    rank: int
    iteration: int

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultPlanError(f"rank must be >= 0, got {self.rank}")
        if self.iteration < 0:
            raise FaultPlanError(
                f"iteration must be >= 0, got {self.iteration}"
            )


@dataclass(frozen=True)
class AllocFault:
    """Fail the Nth device allocation for ``count`` consecutive attempts."""

    index: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise FaultPlanError(f"index must be >= 0, got {self.index}")
        if self.count < 1:
            raise FaultPlanError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class CompileFault:
    """Fail the Nth session compile for ``count`` consecutive attempts."""

    index: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise FaultPlanError(f"index must be >= 0, got {self.index}")
        if self.count < 1:
            raise FaultPlanError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable fault schedule for one run."""

    seed: int = 0
    comm_faults: Tuple[CommFault, ...] = ()
    rank_crashes: Tuple[RankCrash, ...] = ()
    alloc_faults: Tuple[AllocFault, ...] = ()
    compile_faults: Tuple[CompileFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "comm_faults", tuple(self.comm_faults))
        object.__setattr__(self, "rank_crashes", tuple(self.rank_crashes))
        object.__setattr__(self, "alloc_faults", tuple(self.alloc_faults))
        object.__setattr__(self, "compile_faults",
                           tuple(self.compile_faults))

    @property
    def empty(self) -> bool:
        return not (self.comm_faults or self.rank_crashes
                    or self.alloc_faults or self.compile_faults)

    def size(self) -> int:
        return (len(self.comm_faults) + len(self.rank_crashes)
                + len(self.alloc_faults) + len(self.compile_faults))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "comm_faults": [asdict(f) for f in self.comm_faults],
            "rank_crashes": [asdict(f) for f in self.rank_crashes],
            "alloc_faults": [asdict(f) for f in self.alloc_faults],
            "compile_faults": [asdict(f) for f in self.compile_faults],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            comm_faults=tuple(CommFault(**f)
                              for f in data.get("comm_faults", ())),
            rank_crashes=tuple(RankCrash(**f)
                               for f in data.get("rank_crashes", ())),
            alloc_faults=tuple(AllocFault(**f)
                               for f in data.get("alloc_faults", ())),
            compile_faults=tuple(CompileFault(**f)
                                 for f in data.get("compile_faults", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def generate(cls, seed: int, *,
                 comm_faults: int = 3,
                 max_message_index: int = 12,
                 ranks: int = 0,
                 crash_iterations: Sequence[int] = (),
                 alloc_faults: int = 0,
                 max_alloc_index: int = 4,
                 compile_faults: int = 0,
                 max_compile_index: int = 2) -> "FaultPlan":
        """A randomized-but-deterministic plan drawn from ``seed``.

        ``ranks`` > 0 with a non-empty ``crash_iterations`` adds one rank
        crash at a drawn (rank, iteration); comm faults draw kind and
        match-index uniformly (any-source/dest/tag filters, so they fire on
        whatever traffic the run produces).  The same seed and keyword
        arguments always produce the same plan.
        """
        rng = random.Random(f"FaultPlan:{seed}")
        comm: List[CommFault] = []
        for _ in range(comm_faults):
            comm.append(CommFault(
                kind=rng.choice(COMM_FAULT_KINDS),
                match_index=rng.randrange(max_message_index),
            ))
        crashes: List[RankCrash] = []
        if ranks > 0 and crash_iterations:
            crashes.append(RankCrash(
                rank=rng.randrange(ranks),
                iteration=rng.choice(list(crash_iterations)),
            ))
        allocs: List[AllocFault] = []
        for _ in range(alloc_faults):
            allocs.append(AllocFault(index=rng.randrange(max_alloc_index),
                                     count=rng.choice((1, 1, 2))))
        compiles: List[CompileFault] = []
        for _ in range(compile_faults):
            compiles.append(CompileFault(
                index=rng.randrange(max_compile_index), count=1))
        return cls(seed=seed, comm_faults=tuple(comm),
                   rank_crashes=tuple(crashes), alloc_faults=tuple(allocs),
                   compile_faults=tuple(compiles))


__all__ = [
    "COMM_FAULT_KINDS",
    "FaultPlanError",
    "CommFault",
    "RankCrash",
    "AllocFault",
    "CompileFault",
    "FaultPlan",
]
