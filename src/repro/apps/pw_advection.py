"""Piacsek–Williams advection benchmark (paper §4.1, second benchmark).

The PW advection scheme (Piacsek & Williams 1970) computes source terms for
the three wind components ``u``, ``v``, ``w`` from their current values —
the kernel used by the Met Office MONC atmospheric model.  It consists of
three separate stencil computations over three fields which the stencil
transformation fuses into a single stencil region; the paper counts 63
floating point operations per grid cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Floating point operations per grid cell (3 components x 21 flops each).
FLOPS_PER_CELL = 63

#: Bytes moved per grid cell (6 fields read/written as doubles, cold cache).
BYTES_PER_CELL = 8 * 12


@dataclass
class PWAdvectionProblem:
    """Problem configuration: cubic grid of ``n``³ cells."""

    n: int
    niters: int = 1
    dx: float = 100.0
    dy: float = 100.0
    dz: float = 100.0

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.n, self.n, self.n)

    @property
    def cells(self) -> int:
        return self.n**3


def generate_source(n: int, niters: int = 1, name: str = "pw_advection",
                    dx: float = 100.0, dy: float = 100.0, dz: float = 100.0) -> str:
    """Fortran source for the PW advection kernel.

    Three separate loop nests compute ``su``, ``sv`` and ``sw``; the stencil
    flow discovers all three and fuses them into one stencil region.
    """
    return f"""
subroutine {name}(u, v, w, su, sv, sw)
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {niters}
  real(kind=8), parameter :: tcx = 0.5d0 / {float(dx)!r}d0
  real(kind=8), parameter :: tcy = 0.5d0 / {float(dy)!r}d0
  real(kind=8), parameter :: tcz = 0.5d0 / {float(dz)!r}d0
  real(kind=8), intent(in) :: u(n, n, n), v(n, n, n), w(n, n, n)
  real(kind=8), intent(inout) :: su(n, n, n), sv(n, n, n), sw(n, n, n)
  integer :: i, j, k, it
  do it = 1, niters
    do k = 2, n - 1
      do j = 2, n - 1
        do i = 2, n - 1
          su(i, j, k) = tcx * (u(i-1, j, k) * (u(i, j, k) + u(i-1, j, k)) &
                             - u(i+1, j, k) * (u(i, j, k) + u(i+1, j, k))) &
                      + tcy * (u(i, j-1, k) * (v(i, j-1, k) + v(i-1, j-1, k)) &
                             - u(i, j+1, k) * (v(i, j, k) + v(i-1, j, k))) &
                      + tcz * (u(i, j, k-1) * (w(i, j, k-1) + w(i-1, j, k-1)) &
                             - u(i, j, k+1) * (w(i, j, k) + w(i-1, j, k)))
        end do
      end do
    end do
    do k = 2, n - 1
      do j = 2, n - 1
        do i = 2, n - 1
          sv(i, j, k) = tcx * (v(i-1, j, k) * (u(i-1, j, k) + u(i-1, j+1, k)) &
                             - v(i+1, j, k) * (u(i, j, k) + u(i, j+1, k))) &
                      + tcy * (v(i, j-1, k) * (v(i, j, k) + v(i, j-1, k)) &
                             - v(i, j+1, k) * (v(i, j, k) + v(i, j+1, k))) &
                      + tcz * (v(i, j, k-1) * (w(i, j, k-1) + w(i, j+1, k-1)) &
                             - v(i, j, k+1) * (w(i, j, k) + w(i, j+1, k)))
        end do
      end do
    end do
    do k = 2, n - 1
      do j = 2, n - 1
        do i = 2, n - 1
          sw(i, j, k) = tcx * (w(i-1, j, k) * (u(i-1, j, k) + u(i-1, j, k+1)) &
                             - w(i+1, j, k) * (u(i, j, k) + u(i, j, k+1))) &
                      + tcy * (w(i, j-1, k) * (v(i, j-1, k) + v(i, j-1, k+1)) &
                             - w(i, j+1, k) * (v(i, j, k) + v(i, j, k+1))) &
                      + tcz * (w(i, j, k-1) * (w(i, j, k) + w(i, j, k-1)) &
                             - w(i, j, k+1) * (w(i, j, k) + w(i, j, k+1)))
        end do
      end do
    end do
  end do
end subroutine {name}
"""


def initial_fields(n: int, seed: int = 0):
    """Reproducible wind fields (u, v, w) plus zeroed source terms."""
    rng = np.random.default_rng(seed)
    u = np.asfortranarray(rng.random((n, n, n)))
    v = np.asfortranarray(rng.random((n, n, n)))
    w = np.asfortranarray(rng.random((n, n, n)))
    su = np.zeros((n, n, n), order="F")
    sv = np.zeros((n, n, n), order="F")
    sw = np.zeros((n, n, n), order="F")
    return u, v, w, su, sv, sw


def reference(u: np.ndarray, v: np.ndarray, w: np.ndarray,
              dx: float = 100.0, dy: float = 100.0, dz: float = 100.0):
    """Vectorised numpy reference of one PW advection evaluation.

    Returns (su, sv, sw) with zero boundaries, matching the Fortran kernel.
    """
    tcx, tcy, tcz = 0.5 / dx, 0.5 / dy, 0.5 / dz
    n1, n2, n3 = u.shape
    su = np.zeros_like(u)
    sv = np.zeros_like(u)
    sw = np.zeros_like(u)
    C = np.s_[1:-1, 1:-1, 1:-1]         # centre
    XM = np.s_[:-2, 1:-1, 1:-1]         # i-1
    XP = np.s_[2:, 1:-1, 1:-1]          # i+1
    YM = np.s_[1:-1, :-2, 1:-1]         # j-1
    YP = np.s_[1:-1, 2:, 1:-1]          # j+1
    ZM = np.s_[1:-1, 1:-1, :-2]         # k-1
    ZP = np.s_[1:-1, 1:-1, 2:]          # k+1
    XMYM = np.s_[:-2, :-2, 1:-1]        # i-1, j-1
    XMYP = np.s_[:-2, 2:, 1:-1]         # i-1, j+1
    XMZM = np.s_[:-2, 1:-1, :-2]        # i-1, k-1
    XMZP = np.s_[:-2, 1:-1, 2:]         # i-1, k+1
    YMZP = np.s_[1:-1, :-2, 2:]         # j-1, k+1
    YPZM = np.s_[1:-1, 2:, :-2]         # j+1, k-1
    YPZP = np.s_[1:-1, 2:, 2:]          # j+1, k+1
    XPZP = np.s_[2:, 1:-1, 2:]          # i+1, k+1
    XPYP = np.s_[2:, 2:, 1:-1]          # i+1, j+1
    XMYMK = XMYM

    su[C] = (
        tcx * (u[XM] * (u[C] + u[XM]) - u[XP] * (u[C] + u[XP]))
        + tcy * (u[YM] * (v[YM] + v[XMYM]) - u[YP] * (v[C] + v[XM]))
        + tcz * (u[ZM] * (w[ZM] + w[XMZM]) - u[ZP] * (w[C] + w[XM]))
    )
    sv[C] = (
        tcx * (v[XM] * (u[XM] + u[XMYP]) - v[XP] * (u[C] + u[YP]))
        + tcy * (v[YM] * (v[C] + v[YM]) - v[YP] * (v[C] + v[YP]))
        + tcz * (v[ZM] * (w[ZM] + w[YPZM]) - v[ZP] * (w[C] + w[YP]))
    )
    sw[C] = (
        tcx * (w[XM] * (u[XM] + u[XMZP]) - w[XP] * (u[C] + u[ZP]))
        + tcy * (w[YM] * (v[YM] + v[YMZP]) - w[YP] * (v[C] + v[ZP]))
        + tcz * (w[ZM] * (w[C] + w[ZM]) - w[ZP] * (w[C] + w[ZP]))
    )
    return su, sv, sw


__all__ = [
    "PWAdvectionProblem",
    "generate_source",
    "initial_fields",
    "reference",
    "FLOPS_PER_CELL",
    "BYTES_PER_CELL",
]
