"""Gauss–Seidel benchmark (paper §4.1, first benchmark).

Solves Laplace's equation for diffusion in three dimensions with an iterative
solver: each sweep updates every interior grid cell with the average of its
six orthogonal neighbours (a 7-point stencil, 6 floating point operations per
grid cell).

Two numpy references are provided:

* :func:`reference_gauss_seidel` — true in-place Gauss–Seidel sweeps, which is
  what the serial Fortran (and hence the "Flang only" FIR execution) computes;
* :func:`reference_jacobi` — snapshot (Jacobi) sweeps, which is what the
  stencil-dialect execution computes, since ``stencil.apply`` reads a value
  snapshot of its inputs.  Both converge to the same fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Floating point operations per grid cell per sweep (5 adds + 1 divide).
FLOPS_PER_CELL = 6

#: Bytes moved per grid cell per sweep (read 7 + write 1 doubles, cold cache).
BYTES_PER_CELL = 8 * 8


@dataclass
class GaussSeidelProblem:
    """Problem configuration: cubic grid of ``n``³ cells, ``niters`` sweeps."""

    n: int
    niters: int = 1

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.n, self.n, self.n)

    @property
    def cells(self) -> int:
        return self.n**3

    @property
    def interior_cells(self) -> int:
        return (self.n - 2) ** 3

    @property
    def flops_per_sweep(self) -> int:
        return self.interior_cells * FLOPS_PER_CELL


def generate_source(n: int, niters: int = 1, name: str = "gauss_seidel") -> str:
    """Fortran source for the benchmark with the problem size baked in as
    parameters (mirroring how the paper's benchmark kernels fix their size at
    compile time)."""
    return f"""
subroutine {name}(u)
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {niters}
  real(kind=8), intent(inout) :: u(n, n, n)
  integer :: i, j, k, it
  do it = 1, niters
    do k = 2, n - 1
      do j = 2, n - 1
        do i = 2, n - 1
          u(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                      + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
  end do
end subroutine {name}
"""


def generate_source_shaped(shape: Tuple[int, int, int], niters: int = 1,
                           name: str = "gauss_seidel") -> str:
    """Fortran source for the sweep over a (possibly non-cubic) local box.

    The distributed executor compiles one module per distinct rank-local
    padded shape, so non-divisible global domains — where ranks own boxes of
    different sizes — lower through exactly the same pipeline as the cubic
    benchmark.  ``shape`` is the full local extent including ghost planes.
    """
    n1, n2, n3 = (int(s) for s in shape)
    return f"""
subroutine {name}(u)
  implicit none
  integer, parameter :: n1 = {n1}
  integer, parameter :: n2 = {n2}
  integer, parameter :: n3 = {n3}
  integer, parameter :: niters = {niters}
  real(kind=8), intent(inout) :: u(n1, n2, n3)
  integer :: i, j, k, it
  do it = 1, niters
    do k = 2, n3 - 1
      do j = 2, n2 - 1
        do i = 2, n1 - 1
          u(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                      + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
  end do
end subroutine {name}
"""


def initial_condition(n: int, seed: int = 0) -> np.ndarray:
    """A reproducible initial field: random interior, fixed hot/cold faces."""
    rng = np.random.default_rng(seed)
    u = np.asfortranarray(rng.random((n, n, n)))
    u[0, :, :] = 1.0
    u[-1, :, :] = 0.0
    return u


def reference_jacobi(initial: np.ndarray, niters: int) -> np.ndarray:
    """Jacobi sweeps (stencil semantics): each sweep reads the previous field."""
    u = np.array(initial, copy=True, order="F")
    for _ in range(niters):
        old = u.copy()
        u[1:-1, 1:-1, 1:-1] = (
            old[:-2, 1:-1, 1:-1]
            + old[2:, 1:-1, 1:-1]
            + old[1:-1, :-2, 1:-1]
            + old[1:-1, 2:, 1:-1]
            + old[1:-1, 1:-1, :-2]
            + old[1:-1, 1:-1, 2:]
        ) / 6.0
    return u


def reference_gauss_seidel(initial: np.ndarray, niters: int) -> np.ndarray:
    """In-place Gauss–Seidel sweeps matching the serial Fortran loop nest."""
    u = np.array(initial, copy=True, order="F")
    n1, n2, n3 = u.shape
    for _ in range(niters):
        for k in range(1, n3 - 1):
            for j in range(1, n2 - 1):
                for i in range(1, n1 - 1):
                    u[i, j, k] = (
                        u[i - 1, j, k]
                        + u[i + 1, j, k]
                        + u[i, j - 1, k]
                        + u[i, j + 1, k]
                        + u[i, j, k - 1]
                        + u[i, j, k + 1]
                    ) / 6.0
    return u


def residual(u: np.ndarray) -> float:
    """Max-norm residual of the interior Laplace equation (convergence check)."""
    lap = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
    ) / 6.0 - u[1:-1, 1:-1, 1:-1]
    return float(np.abs(lap).max())


#: Problem sizes used in the paper's single-core figure (total grid cells).
PAPER_PROBLEM_SIZES = {
    "16M": 16_777_216,       # 256^3
    "134M": 134_217_728,     # 512^3
    "1.1B": 1_073_741_824,   # 1024^3
    "2.1B": 2_147_483_648,   # 1290^3 (approximately; paper quotes 2.1 billion)
}


__all__ = [
    "GaussSeidelProblem",
    "generate_source",
    "generate_source_shaped",
    "initial_condition",
    "reference_jacobi",
    "reference_gauss_seidel",
    "residual",
    "FLOPS_PER_CELL",
    "BYTES_PER_CELL",
    "PAPER_PROBLEM_SIZES",
]
