"""Benchmark applications: the two stencil codes evaluated in the paper."""

from . import gauss_seidel, pw_advection

__all__ = ["gauss_seidel", "pw_advection"]
