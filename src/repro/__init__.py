"""repro — reproduction of Brown et al., "Fortran performance optimisation and
auto-parallelisation by leveraging MLIR-based domain specific abstractions in
Flang" (SC-W 2023).

The package contains:

* :mod:`repro.ir` — an xDSL/MLIR-equivalent SSA IR framework,
* :mod:`repro.dialects` — the dialects used by the flow (FIR, stencil, scf,
  OpenMP, GPU, DMP, MPI, ...),
* :mod:`repro.frontend` — a Fortran-subset frontend that emits FIR the way
  Flang does,
* :mod:`repro.transforms` — the paper's stencil discovery/extraction passes
  and the lowerings to each target,
* :mod:`repro.runtime` — interpreters, simulated GPU/MPI substrates and the
  machine performance models,
* :mod:`repro.apps` — the Gauss-Seidel and PW advection benchmarks,
* :mod:`repro.harness` — experiment drivers regenerating every figure of the
  paper's evaluation.

The public compiler API (:mod:`repro.api` — ``repro.compile``, the backend
registry, ``Program``/``Session``) and the legacy driver shim
(:mod:`repro.compiler`) are re-exported lazily so that importing
:mod:`repro` stays cheap.
"""

__version__ = "1.1.0"

_LAZY_EXPORTS = {
    # Fluent API (the supported surface).
    "compile": "repro.api",
    "Program": "repro.api",
    "CompiledProgram": "repro.api",
    "DistributedProgram": "repro.api",
    "CompiledArtifact": "repro.api",
    "Session": "repro.api",
    "default_session": "repro.api",
    "Backend": "repro.api",
    "BackendRegistry": "repro.api",
    "UnknownBackendError": "repro.api",
    "registry": "repro.api",
    "get_backend": "repro.api",
    "OptionError": "repro.api",
    "BackendOptions": "repro.api",
    "FlangOnlyOptions": "repro.api",
    "CpuOptions": "repro.api",
    "OpenMPOptions": "repro.api",
    "GpuOptions": "repro.api",
    "DmpOptions": "repro.api",
    # User-schedulable kernels.
    "Schedule": "repro.schedule",
    "ScheduleError": "repro.schedule",
    "ScheduleVerificationError": "repro.schedule",
    # Compilation as a service (on-disk artifact store + front door).
    "ArtifactStore": "repro.serve",
    "CompileService": "repro.serve",
    "ServiceMetrics": "repro.serve",
    "ServiceRejected": "repro.serve",
    "ServiceTimeout": "repro.serve",
    # Fault injection and recovery.
    "FaultPlan": "repro.resilience",
    "ResilienceOptions": "repro.resilience",
    "RecoveryReport": "repro.resilience",
    # Legacy deprecation shim.
    "CompilerDriver": "repro.compiler",
    "CompilerOptions": "repro.compiler",
    "CompilationResult": "repro.compiler",
    "Target": "repro.compiler",
    "compile_fortran": "repro.compiler",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute '{name}'")
