"""The differential fuzz runner: every backend × execution mode vs the oracle.

For each :class:`repro.fuzz.KernelSpec` the runner compiles the rendered
source through the fluent ``Program`` API of one shared :class:`repro.api.Session`
(the whole farm deliberately runs on a single session so the artifact cache
is exercised under churn — runtime-mode derivations of one case must hit,
distinct cases must miss) and executes a configuration matrix:

* **oracle** — the cpu backend in ``interpret`` mode: pure op-by-op scalar
  execution, the reference semantics every other path is judged against;
* **cpu / openmp / gpu** — vectorized and crosscheck modes, lowered and
  unlowered pipelines, thread counts, OpenMP schedules and GPU stream
  counts — each compared **bitwise** (``ndarray.tobytes()``) against the
  oracle's output arrays;
* **flang-only** — plain-FIR in-place execution, compared only for specs
  where snapshot and in-place semantics provably coincide
  (:attr:`KernelSpec.flang_comparable`);
* **dmp** — distributed-style specs run through ``distribute(...)`` over
  1/2/4-rank process grids with real halo exchanges.  Rank-padded arrays
  carry ghost planes the plain-cpu loop does not have, so the dmp island
  has its own oracle: the 1-rank *interpret* distributed run, against which
  every multi-rank/vectorized plan must agree bitwise.

Any bitwise mismatch, crosscheck failure, or backend crash is recorded as a
:class:`Divergence` carrying the spec and a replay command; the
:class:`FuzzFarm` aggregates per-backend run/divergence/fallback counters
into a :class:`FuzzReport` that ``repro.harness.fuzz_summary_table`` renders.

A **test-only fault hook** may be installed on the runner
(``fault_hook(spec, config_label, outputs)``) to perturb a configuration's
outputs after execution — the injected-miscompile path used to prove the
farm catches, minimizes and persists real divergences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..api.session import Session
from ..runtime.interpreter import InterpreterError
from .generator import DEFAULT_CONFIG, GeneratorConfig, KernelSpec, generate_spec

#: Interpreter stat counters summed into the per-backend fallback column.
_FALLBACK_STATS = ("vectorize_fallbacks", "parallel_fallbacks",
                   "gpu_launch_fallbacks")

#: Test-only output perturbation: (spec, config label, outputs) -> None.
FaultHook = Callable[[KernelSpec, str, Dict[str, np.ndarray]], None]


@dataclass(frozen=True)
class BackendConfig:
    """One cell of the differential matrix.

    ``options`` are compile-time backend options (frozen into the session
    cache key); ``threads`` and ``execution_mode`` are runtime-only.  dmp
    cells set ``grid`` and run through the distributed executor with
    ``iterations`` entry calls per rank.
    """

    label: str
    backend: str
    execution_mode: str
    options: Tuple[Tuple[str, object], ...] = ()
    threads: int = 1
    grid: Optional[Tuple[int, ...]] = None
    iterations: int = 1

    def option_dict(self) -> Dict[str, object]:
        return dict(self.options)


def _cfg(label: str, backend: str, mode: str, threads: int = 1,
         grid: Optional[Tuple[int, ...]] = None, iterations: int = 1,
         **options) -> BackendConfig:
    return BackendConfig(label=label, backend=backend, execution_mode=mode,
                         options=tuple(sorted(options.items())),
                         threads=threads, grid=grid, iterations=iterations)


#: dmp entry calls per rank — >1 so halo exchanges between snapshots run.
_DMP_ITERATIONS = 2


def default_matrix(spec: KernelSpec,
                   backends: Optional[Sequence[str]] = None) -> List[BackendConfig]:
    """The configuration matrix one spec runs through (oracle excluded).

    ``backends`` optionally restricts the matrix to a subset of backend
    names (the CLI's ``--backends``).
    """
    configs = [
        _cfg("cpu/vectorize", "cpu", "vectorize"),
        _cfg("cpu/crosscheck", "cpu", "crosscheck"),
        _cfg("cpu-scf/vectorize", "cpu", "vectorize", lower_to_scf=True),
        _cfg("openmp-static-t2/vectorize", "openmp", "vectorize", threads=2,
             lower_to_scf=True),
        _cfg("openmp-dynamic-t4/crosscheck", "openmp", "crosscheck",
             threads=4, lower_to_scf=True, schedule="dynamic", chunk_size=2),
        _cfg("gpu/vectorize", "gpu", "vectorize"),
        _cfg("gpu-scf-s2/vectorize", "gpu", "vectorize", lower_to_scf=True,
             streams=2),
    ]
    if spec.flang_comparable:
        configs.append(_cfg("flang-only/interpret", "flang-only", "interpret"))
    if spec.style == "distributed":
        configs.extend([
            _cfg("dmp-1x1/vectorize", "dmp", "vectorize", grid=(1, 1),
                 iterations=_DMP_ITERATIONS),
            _cfg("dmp-2x1/vectorize", "dmp", "vectorize", grid=(2, 1),
                 iterations=_DMP_ITERATIONS),
            _cfg("dmp-2x2/vectorize", "dmp", "vectorize", grid=(2, 2),
                 iterations=_DMP_ITERATIONS),
        ])
    if backends is not None:
        allowed = set(backends)
        configs = [c for c in configs if c.backend in allowed]
    return configs


@dataclass
class Divergence:
    """One configuration disagreeing with its oracle (or crashing)."""

    seed: int
    config_label: str
    backend: str
    #: "bitwise" (outputs differ), "crosscheck" (the honesty mode raised),
    #: or "error" (the backend crashed on a valid kernel).
    kind: str
    detail: str
    spec: KernelSpec
    arrays: Tuple[str, ...] = ()
    max_abs_diff: Optional[float] = None

    @property
    def repro_command(self) -> str:
        return (f"PYTHONPATH=src python -m repro.fuzz "
                f"--replay-seed {self.seed} --config '{self.config_label}'")

    def describe(self) -> str:
        extra = f" arrays={list(self.arrays)}" if self.arrays else ""
        diff = (f" max|diff|={self.max_abs_diff:.3e}"
                if self.max_abs_diff is not None else "")
        return (f"seed {self.seed} [{self.config_label}] {self.kind}:"
                f" {self.detail}{extra}{diff}\n  repro: {self.repro_command}")


@dataclass
class CaseResult:
    spec: KernelSpec
    divergences: List[Divergence] = field(default_factory=list)
    configs_run: int = 0
    #: Per-backend counters for this case: runs / divergences / fallbacks.
    per_backend: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class FuzzReport:
    """Aggregated farm results, rendered by ``harness.fuzz_summary_table``."""

    cases: int = 0
    configs_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    per_backend: Dict[str, Dict[str, int]] = field(default_factory=dict)
    seconds: float = 0.0
    budget_exhausted: bool = False
    seeds_skipped: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def merge_case(self, result: CaseResult) -> None:
        self.cases += 1
        self.configs_run += result.configs_run
        self.divergences.extend(result.divergences)
        for backend, counters in result.per_backend.items():
            into = self.per_backend.setdefault(
                backend, {"runs": 0, "divergences": 0, "fallbacks": 0})
            for key, value in counters.items():
                into[key] += value


class DifferentialRunner:
    """Runs one spec through the matrix and compares bitwise to the oracle."""

    def __init__(self, session: Optional[Session] = None,
                 backends: Optional[Sequence[str]] = None,
                 fault_hook: Optional[FaultHook] = None):
        self.session = session if session is not None else Session()
        self.backends = tuple(backends) if backends is not None else None
        self.fault_hook = fault_hook

    # -- inputs --------------------------------------------------------------

    def inputs_for(self, spec: KernelSpec) -> Tuple[Dict[str, np.ndarray], float]:
        """Deterministic inputs for a spec: positive Fortran-ordered arrays
        (one rng stream per array) and the scalar parameter."""
        arrays = {}
        for index, name in enumerate(spec.arrays):
            rng = np.random.default_rng([spec.seed, index])
            arrays[name] = np.asfortranarray(
                rng.uniform(0.5, 2.0, size=spec.extents))
        scalar = float(np.random.default_rng([spec.seed, 997]).uniform(0.5, 2.0))
        return arrays, scalar

    def _call_args(self, spec: KernelSpec,
                   arrays: Dict[str, np.ndarray], scalar: float) -> List[object]:
        args: List[object] = [arrays[name] for name in spec.arrays]
        if spec.has_scalar:
            args.append(scalar)
        return args

    # -- execution -----------------------------------------------------------

    def _run_plain(self, spec: KernelSpec, backend: str, mode: str,
                   threads: int, options: Dict[str, object],
                   calls: int = 1) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        compiled = self.session.compile(spec.render()).lower(
            backend, execution_mode=mode, threads=threads, **options)
        arrays, scalar = self.inputs_for(spec)
        work = {name: arr.copy(order="F") for name, arr in arrays.items()}
        interp = compiled.interpreter()
        # Repeated exp under a sweep loop can saturate to inf/NaN; that is
        # deterministic and bitwise-compared like any other value, so the
        # overflow warnings are noise, not findings.
        with np.errstate(over="ignore", invalid="ignore"):
            for _ in range(calls):
                interp.call(spec.entry, *self._call_args(spec, work, scalar))
        fallbacks = sum(int(interp.stats.get(key, 0))
                        for key in _FALLBACK_STATS)
        return work, {"fallbacks": fallbacks}

    def _run_dmp(self, spec: KernelSpec, cfg: BackendConfig
                 ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        compiled = self.session.compile(spec.render()).lower(
            "dmp", grid=cfg.grid, execution_mode=cfg.execution_mode,
            threads=cfg.threads, **cfg.option_dict())
        plan = compiled.distribute(
            source_builder=lambda shape: spec.render(shape=shape),
            entry=spec.entry,
        )
        arrays, _ = self.inputs_for(spec)
        result = plan.run(arrays[spec.arrays[0]], iterations=cfg.iterations)
        return {spec.arrays[0]: result.field}, {"fallbacks": 0}

    def run_oracle(self, spec: KernelSpec) -> Dict[str, np.ndarray]:
        """The scalar reference: cpu backend, pure interpretation."""
        outputs, _ = self._run_plain(spec, "cpu", "interpret", 1, {})
        return outputs

    def run_dmp_oracle(self, spec: KernelSpec,
                       iterations: int = _DMP_ITERATIONS) -> Dict[str, np.ndarray]:
        """The distributed reference: 1-rank scatter/gather plan on the
        scalar interpreter (padded ghost-plane semantics, no vectorization)."""
        cfg = _cfg("dmp-oracle/interpret", "dmp", "interpret", grid=(1, 1),
                   iterations=iterations)
        outputs, _ = self._run_dmp(spec, cfg)
        return outputs

    def run_config(self, spec: KernelSpec, cfg: BackendConfig
                   ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        if cfg.backend == "dmp":
            outputs, stats = self._run_dmp(spec, cfg)
        else:
            outputs, stats = self._run_plain(
                spec, cfg.backend, cfg.execution_mode, cfg.threads,
                cfg.option_dict())
        if self.fault_hook is not None:
            self.fault_hook(spec, cfg.label, outputs)
        return outputs, stats

    # -- comparison ----------------------------------------------------------

    @staticmethod
    def compare(expected: Dict[str, np.ndarray],
                actual: Dict[str, np.ndarray]) -> Tuple[Tuple[str, ...], float]:
        """Bitwise comparison of every output array; returns the names that
        differ and the largest absolute elementwise difference among them."""
        differing = []
        max_diff = 0.0
        for name, ref in expected.items():
            got = actual[name]
            if ref.tobytes() != got.tobytes():
                differing.append(name)
                with np.errstate(invalid="ignore"):
                    delta = np.abs(ref - got)
                finite = delta[np.isfinite(delta)]
                diff = float(finite.max()) if finite.size else float("inf")
                max_diff = max(max_diff, diff)
        return tuple(differing), max_diff

    # -- the per-case driver -------------------------------------------------

    def run_case(self, spec: KernelSpec) -> CaseResult:
        result = CaseResult(spec=spec)
        oracle = self.run_oracle(spec)
        dmp_oracle: Optional[Dict[str, np.ndarray]] = None
        for cfg in default_matrix(spec, self.backends):
            counters = result.per_backend.setdefault(
                cfg.backend, {"runs": 0, "divergences": 0, "fallbacks": 0})
            try:
                outputs, stats = self.run_config(spec, cfg)
            except InterpreterError as err:
                # Crosscheck replays every vectorized sweep through the
                # scalar oracle and raises on mismatch — a caught miscompile.
                result.configs_run += 1
                counters["runs"] += 1
                counters["divergences"] += 1
                result.divergences.append(Divergence(
                    seed=spec.seed, config_label=cfg.label,
                    backend=cfg.backend, kind="crosscheck",
                    detail=str(err).splitlines()[0], spec=spec))
                continue
            except Exception as err:  # noqa: BLE001 — a crash IS a finding
                result.configs_run += 1
                counters["runs"] += 1
                counters["divergences"] += 1
                result.divergences.append(Divergence(
                    seed=spec.seed, config_label=cfg.label,
                    backend=cfg.backend, kind="error",
                    detail=f"{type(err).__name__}: {err}", spec=spec))
                continue
            result.configs_run += 1
            counters["runs"] += 1
            counters["fallbacks"] += stats.get("fallbacks", 0)
            if cfg.backend == "dmp":
                if dmp_oracle is None:
                    dmp_oracle = self.run_dmp_oracle(spec, cfg.iterations)
                expected = dmp_oracle
            else:
                expected = oracle
            differing, max_diff = self.compare(expected, outputs)
            if differing:
                counters["divergences"] += 1
                result.divergences.append(Divergence(
                    seed=spec.seed, config_label=cfg.label,
                    backend=cfg.backend, kind="bitwise",
                    detail="outputs differ from the scalar oracle",
                    spec=spec, arrays=differing, max_abs_diff=max_diff))
        return result

    def reproduces(self, spec: KernelSpec, config_label: str) -> bool:
        """Does ``config_label`` still diverge for ``spec``?  The minimizer's
        predicate: only the named configuration is re-run."""
        matching = [c for c in default_matrix(spec, self.backends)
                    if c.label == config_label]
        if not matching:
            return False
        cfg = matching[0]
        try:
            outputs, _ = self.run_config(spec, cfg)
        except Exception:  # noqa: BLE001 — crash still reproduces the finding
            return True
        if cfg.backend == "dmp":
            expected = self.run_dmp_oracle(spec, cfg.iterations)
        else:
            expected = self.run_oracle(spec)
        differing, _ = self.compare(expected, outputs)
        return bool(differing)


class FuzzFarm:
    """Drives N seeds through the differential runner under a time budget."""

    def __init__(self, seeds: Optional[Iterable[int]] = None, *,
                 count: Optional[int] = None, start: int = 0,
                 generator_config: GeneratorConfig = DEFAULT_CONFIG,
                 session: Optional[Session] = None,
                 backends: Optional[Sequence[str]] = None,
                 fault_hook: Optional[FaultHook] = None,
                 time_budget: Optional[float] = None):
        if seeds is None:
            seeds = range(start, start + (count if count is not None else 10))
        self.seeds = list(seeds)
        self.generator_config = generator_config
        self.time_budget = time_budget
        self.runner = DifferentialRunner(session=session, backends=backends,
                                         fault_hook=fault_hook)

    @property
    def session(self) -> Session:
        return self.runner.session

    def run(self, on_case: Optional[Callable[[CaseResult], None]] = None
            ) -> FuzzReport:
        report = FuzzReport()
        started = time.perf_counter()
        for position, seed in enumerate(self.seeds):
            if (self.time_budget is not None
                    and time.perf_counter() - started > self.time_budget):
                report.budget_exhausted = True
                report.seeds_skipped = len(self.seeds) - position
                break
            spec = generate_spec(seed, self.generator_config)
            result = self.runner.run_case(spec)
            report.merge_case(result)
            if on_case is not None:
                on_case(result)
        report.seconds = time.perf_counter() - started
        report.cache_stats = dict(self.session.cache_stats)
        return report


__all__ = [
    "BackendConfig",
    "default_matrix",
    "Divergence",
    "CaseResult",
    "FuzzReport",
    "DifferentialRunner",
    "FuzzFarm",
    "FaultHook",
]
