"""Random-schedule differential fuzzing: ``python -m repro.fuzz --schedules``.

For each generated :class:`KernelSpec` the farm draws a random schedule
chain per backend configuration — directives in canonical order
(``fuse`` → ``tile`` → ``reorder`` → ``unroll``), each kept only if the
kernel structurally admits it — and asks :meth:`repro.schedule.Schedule.verify`
to prove the scheduled artifact **bitwise identical** to its unscheduled
parent.  Three ways a case can fall out:

* the directive is structurally infeasible for this kernel (wrong depth,
  non-dividing unroll factor): :class:`ScheduleError` at derivation time —
  the directive is dropped, which is itself coverage of the loud-error path;
* the scheduled program diverges from the oracle:
  :class:`ScheduleVerificationError` — a real miscompile, recorded as a
  divergence with a replay command;
* anything else raised while compiling or running a structurally accepted
  chain is a crash, also recorded as a divergence.

The chain drawn for a given ``(seed, config)`` pair is a pure function of
those two values, so every finding replays from the seed alone.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..api.session import Session
from ..schedule.directives import ScheduleError, describe_chain
from ..schedule.schedule import Schedule, ScheduleVerificationError
from .generator import DEFAULT_CONFIG, GeneratorConfig, KernelSpec, generate_spec

#: Tile sizes the chain generator draws from (mixing degenerate, small and
#: extent-crossing sizes so clipped edge boxes are exercised).
_TILE_SIZES = (1, 2, 3, 4, 8)
_UNROLL_FACTORS = (2, 3, 4)


@dataclass(frozen=True)
class ScheduleConfig:
    """One backend configuration random chains are drawn for."""

    label: str
    backend: str
    options: Tuple[Tuple[str, object], ...] = ()
    #: Directives this configuration may draw (canonical order).
    directives: Tuple[str, ...] = ("fuse", "tile", "reorder", "unroll")


def default_schedule_matrix(spec: KernelSpec) -> List[ScheduleConfig]:
    configs = [
        ScheduleConfig("cpu-stencil", "cpu", directives=("fuse", "tile")),
        ScheduleConfig("cpu-scf", "cpu", (("lower_to_scf", True),)),
        ScheduleConfig("openmp-scf", "openmp",
                       (("lower_to_scf", True), ("threads", 2))),
    ]
    if spec.flang_comparable and spec.rank >= 2:
        configs.append(
            ScheduleConfig("flang-reorder", "flang-only",
                           directives=("reorder",)))
    return configs


def draw_chain(rng: random.Random, spec: KernelSpec,
               schedule: Schedule, directives: Tuple[str, ...]) -> Schedule:
    """Grow a random legal chain on ``schedule``, one directive at a time.

    Each candidate is applied through the real lowering; a
    :class:`ScheduleError` means the kernel does not admit it (too shallow a
    nest, non-dividing factor, ...) and the candidate is dropped.  Anything
    that survives derivation is structurally legal by construction.
    """
    serial_depth = max(0, spec.rank - 1)

    def attempt(fn: Callable[[Schedule], Schedule]) -> Schedule:
        try:
            return fn(schedule)
        except ScheduleError:
            return schedule

    if "fuse" in directives and rng.random() < 0.5:
        schedule = attempt(lambda s: s.fuse())
    if "tile" in directives and rng.random() < 0.8:
        sizes = tuple(rng.choice(_TILE_SIZES) for _ in range(spec.rank))
        schedule = attempt(lambda s: s.tile(*sizes))
    if "reorder" in directives:
        # flang bands include every do-loop level; scf nests only the serial
        # tail — draw over the deepest plausible band and let derivation
        # reject what the kernel cannot carry.
        depth = spec.rank if schedule.compiled.backend_name == "flang-only" \
            else serial_depth
        if depth >= 2 and rng.random() < 0.7:
            m = rng.randrange(2, depth + 1)
            perm = list(range(m))
            while perm == list(range(m)):  # force a real permutation
                rng.shuffle(perm)
            schedule = attempt(lambda s: s.reorder(*perm))
    if "unroll" in directives and serial_depth >= 1 and rng.random() < 0.5:
        loop = rng.randrange(serial_depth)
        factor = rng.choice(_UNROLL_FACTORS)
        schedule = attempt(lambda s: s.unroll(loop, factor))
    return schedule


@dataclass
class ScheduleDivergence:
    """A schedule chain whose execution diverged from the unscheduled
    parent (or crashed after structural acceptance)."""

    seed: int
    config_label: str
    chain: str
    kind: str  # "verify" | "error"
    detail: str

    @property
    def repro_command(self) -> str:
        return (f"PYTHONPATH=src python -m repro.fuzz --schedules "
                f"--seeds 1 --start-seed {self.seed}")

    def describe(self) -> str:
        return (f"seed {self.seed} [{self.config_label}] chain "
                f"{self.chain or '<empty>'} {self.kind}: {self.detail}\n"
                f"  repro: {self.repro_command}")


@dataclass
class ScheduleCaseResult:
    spec: KernelSpec
    chains: List[Tuple[str, str]] = field(default_factory=list)
    divergences: List[ScheduleDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class ScheduleFuzzReport:
    cases: int = 0
    chains_run: int = 0
    directives_applied: int = 0
    divergences: List[ScheduleDivergence] = field(default_factory=list)
    seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        status = "OK" if self.ok else "DIVERGED"
        return (f"schedule fuzz: {self.cases} cases, {self.chains_run} "
                f"chains ({self.directives_applied} directives applied), "
                f"{len(self.divergences)} divergences, "
                f"{self.seconds:.1f}s [{status}]")


class ScheduleFuzzFarm:
    """Drives N seeds through random legal schedule chains + verify()."""

    def __init__(self, seeds=None, *, count: Optional[int] = None,
                 start: int = 0,
                 generator_config: GeneratorConfig = DEFAULT_CONFIG,
                 session: Optional[Session] = None,
                 time_budget: Optional[float] = None):
        if seeds is None:
            seeds = range(start, start + (count if count is not None else 25))
        self.seeds = list(seeds)
        self.generator_config = generator_config
        self.session = session if session is not None else Session()
        self.time_budget = time_budget

    def run_case(self, spec: KernelSpec) -> ScheduleCaseResult:
        result = ScheduleCaseResult(spec=spec)
        program = self.session.compile(spec.render())
        for config in default_schedule_matrix(spec):
            rng = random.Random(f"{spec.seed}/{config.label}")
            chain_text = "<underived>"
            try:
                base = program.lower(config.backend, **dict(config.options))
                schedule = draw_chain(rng, spec, base.schedule(),
                                      config.directives)
                chain_text = describe_chain(schedule.chain)
                result.chains.append((config.label, chain_text))
                if not schedule.chain:
                    continue
                schedule.verify(entry=spec.entry)
            except ScheduleVerificationError as err:
                result.divergences.append(ScheduleDivergence(
                    seed=spec.seed, config_label=config.label,
                    chain=chain_text, kind="verify",
                    detail=str(err).splitlines()[0]))
            except Exception as err:  # noqa: BLE001 — a crash IS a finding
                result.divergences.append(ScheduleDivergence(
                    seed=spec.seed, config_label=config.label,
                    chain=chain_text, kind="error",
                    detail=f"{type(err).__name__}: {err}"))
        return result

    def run(self, on_case=None) -> ScheduleFuzzReport:
        report = ScheduleFuzzReport()
        started = time.perf_counter()
        for position, seed in enumerate(self.seeds):
            if (self.time_budget is not None
                    and time.perf_counter() - started > self.time_budget):
                report.budget_exhausted = True
                break
            spec = generate_spec(seed, self.generator_config)
            result = self.run_case(spec)
            report.cases += 1
            report.chains_run += len(result.chains)
            report.directives_applied += sum(
                chain.count("(") for _, chain in result.chains)
            report.divergences.extend(result.divergences)
            if on_case is not None:
                on_case(result)
        report.seconds = time.perf_counter() - started
        return report


__all__ = [
    "ScheduleConfig",
    "ScheduleDivergence",
    "ScheduleCaseResult",
    "ScheduleFuzzReport",
    "ScheduleFuzzFarm",
    "default_schedule_matrix",
    "draw_chain",
]
