"""Generative Fortran kernels: the round-trip generator and the spec-based
executable generator behind the differential fuzz farm.

Two generators live here:

* the **legacy round-trip generator** (:func:`gen_kernel` /
  :func:`gen_expression`), moved verbatim from
  ``tests/frontend/test_roundtrip_property.py`` — it produces parse-only
  kernels whose printed IR must re-parse, and the round-trip test imports it
  from this module;
* the **executable spec generator** (:func:`generate_spec`), which builds a
  structured :class:`KernelSpec` — rank, extents, sweeps, stencil offsets,
  intrinsics, expression trees — that *renders* to Fortran instead of being
  generated as text.  Specs are the unit the whole fuzz farm operates on:

  - **replayable**: a spec is a pure function of ``(seed, GeneratorConfig)``
    and records its decision trace, so any case reproduces from two integers
    and a config; specs also serialise to JSON (:meth:`KernelSpec.to_dict`)
    for the persisted corpus.
  - **executable everywhere**: generated expressions are NaN/Inf-free by
    construction (``sqrt`` renders over ``abs``, division denominators are
    clamped, ``exp`` only applies to leaves), so bitwise comparison against
    the scalar oracle is meaningful on every backend.
  - **minimizable**: the delta-debugging minimizer shrinks specs
    structurally (drop statements, hoist subexpressions, zero offsets,
    shrink extents) via :func:`expr_paths` / :func:`expr_replace`, then
    re-renders — no fragile text surgery.
  - **shape-parameterizable**: :meth:`KernelSpec.render` accepts a shape
    override, which is what lets the dmp backend compile one kernel per
    rank-local padded shape through ``distribute(source_builder=...)``.

``style="distributed"`` specs are constrained to what the DMP halo-exchange
machinery supports — a single array, orthogonal (star) offsets of at most
the halo width — while ``style="general"`` specs roam wider: ranks 1–3,
diagonal and width-2 offsets, a second array and a scalar parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Loop index variables, innermost first (dimension order).
LOOP_VARS = ("i", "j", "k")
#: Unary intrinsics that lower to single math ops (safe at any nesting).
UNARY_INTRINSICS = ("sqrt", "abs", "exp", "sin", "cos", "tan", "tanh")
BINARY_OPS = ("+", "-", "*", "/")


# ---------------------------------------------------------------------------
# Legacy round-trip generator (imported by tests/frontend/test_roundtrip_property.py)
# ---------------------------------------------------------------------------


def gen_expression(rng: random.Random, arrays, indices, depth: int) -> str:
    """A random scalar-valued Fortran expression over array accesses."""
    if depth <= 0 or rng.random() < 0.3:
        kind = rng.randrange(3)
        if kind == 0 and arrays:
            name, rank = rng.choice(arrays)
            subscripts = []
            for dim in range(rank):
                offset = rng.choice((-1, 0, 1))
                var = indices[dim]
                if offset == 0:
                    subscripts.append(var)
                else:
                    subscripts.append(f"{var}{'+' if offset > 0 else '-'}{abs(offset)}")
            return f"{name}({', '.join(subscripts)})"
        if kind == 1:
            return f"{rng.uniform(0.5, 4.0):.3f}d0"
        return "s"
    choice = rng.randrange(4)
    if choice == 0:
        intrinsic = rng.choice(UNARY_INTRINSICS)
        return f"{intrinsic}({gen_expression(rng, arrays, indices, depth - 1)})"
    if choice == 1:
        fn = rng.choice(("min", "max"))
        lhs = gen_expression(rng, arrays, indices, depth - 1)
        rhs = gen_expression(rng, arrays, indices, depth - 1)
        return f"{fn}({lhs}, {rhs})"
    op = rng.choice(BINARY_OPS)
    lhs = gen_expression(rng, arrays, indices, depth - 1)
    rhs = gen_expression(rng, arrays, indices, depth - 1)
    return f"({lhs} {op} {rhs})"


def gen_kernel(seed: int) -> str:
    """A random small Fortran subroutine: rank-1..3 arrays, a loop nest over
    every dimension, 1-2 assignments with neighbour accesses and intrinsics."""
    rng = random.Random(seed)
    rank = rng.randrange(1, 4)
    extents = [rng.randrange(5, 9) for _ in range(rank)]
    indices = LOOP_VARS[:rank]
    arrays = [("a", rank)]
    if rng.random() < 0.6:
        arrays.append(("b", rank))
    dim_params = ", ".join(f"n{d + 1} = {extent}" for d, extent in enumerate(extents))
    dim_names = ", ".join(f"n{d + 1}" for d in range(rank))
    declarations = "\n".join(
        f"  real(kind=8), intent(inout) :: {name}({dim_names})"
        for name, _ in arrays
    )
    statements = []
    for _ in range(rng.randrange(1, 3)):
        target, target_rank = arrays[0]
        lhs = f"{target}({', '.join(indices)})"
        rhs = gen_expression(rng, arrays, indices, depth=rng.randrange(1, 4))
        statements.append(f"{lhs} = {rhs}")
    body = "\n".join("      " + s for s in statements)
    # Offsets reach at most one cell, so 2..n-1 loop bounds stay in bounds.
    opening = "\n".join(
        f"  do {var} = 2, n{dim + 1} - 1"
        for dim, var in reversed(list(enumerate(indices)))
    )
    closing = "\n".join("  end do" for _ in indices)
    return f"""
subroutine kernel{seed}({', '.join(name for name, _ in arrays)}, s)
  implicit none
  integer, parameter :: {dim_params}
  real(kind=8), intent(inout) :: s
{declarations}
  integer :: {', '.join(indices)}
{opening}
{body}
{closing}
end subroutine kernel{seed}
"""


# ---------------------------------------------------------------------------
# Expression trees for executable specs
# ---------------------------------------------------------------------------

#: Intrinsics the executable generator draws from.  ``tan`` is deliberately
#: absent: its near-pole magnitudes make downstream products overflow, and
#: the farm wants finite, bitwise-comparable values everywhere.
EXECUTABLE_INTRINSICS = ("sqrt", "abs", "exp", "sin", "cos", "tanh")
#: Binary operators; ``div`` renders with a clamped denominator.
EXECUTABLE_BINARY_OPS = ("+", "-", "*", "div", "min", "max")


@dataclass(frozen=True)
class Access:
    """An array read at a constant neighbour offset per dimension."""

    array: str
    offsets: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "offsets", tuple(int(o) for o in self.offsets))


@dataclass(frozen=True)
class Const:
    value: float


@dataclass(frozen=True)
class ScalarRef:
    """The scalar parameter ``s`` (read-only in generated kernels)."""


@dataclass(frozen=True)
class Unary:
    fn: str
    arg: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str
    lhs: "Expr"
    rhs: "Expr"


Expr = Union[Access, Const, ScalarRef, Unary, Binary]


def _subscript(var: str, offset: int) -> str:
    if offset == 0:
        return var
    return f"{var}{'+' if offset > 0 else '-'}{abs(offset)}"


def render_expr(expr: Expr, indices: Sequence[str]) -> str:
    """Render one expression tree to Fortran over loop ``indices``.

    Numerical safety is enforced here, not in the tree: ``sqrt`` renders over
    ``abs`` and ``div`` clamps its denominator away from zero, so every
    generated kernel stays NaN/Inf-free on inputs of any sign.
    """
    if isinstance(expr, Access):
        subs = ", ".join(_subscript(indices[d], o)
                         for d, o in enumerate(expr.offsets))
        return f"{expr.array}({subs})"
    if isinstance(expr, Const):
        return f"{expr.value:.3f}d0"
    if isinstance(expr, ScalarRef):
        return "s"
    if isinstance(expr, Unary):
        arg = render_expr(expr.arg, indices)
        if expr.fn == "sqrt":
            return f"sqrt(abs({arg}))"
        return f"{expr.fn}({arg})"
    if isinstance(expr, Binary):
        lhs = render_expr(expr.lhs, indices)
        rhs = render_expr(expr.rhs, indices)
        if expr.op == "div":
            return f"({lhs} / max(abs({rhs}), 0.5d0))"
        if expr.op in ("min", "max"):
            return f"{expr.op}({lhs}, {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    raise TypeError(f"unknown expression node {expr!r}")


def expr_paths(expr: Expr, prefix: Tuple[int, ...] = ()) -> Iterator[Tuple[Tuple[int, ...], Expr]]:
    """Every (path, node) pair in pre-order; a path is a tuple of child
    indices from the root (Unary child = 0, Binary children = 0, 1)."""
    yield prefix, expr
    if isinstance(expr, Unary):
        yield from expr_paths(expr.arg, prefix + (0,))
    elif isinstance(expr, Binary):
        yield from expr_paths(expr.lhs, prefix + (0,))
        yield from expr_paths(expr.rhs, prefix + (1,))


def expr_replace(expr: Expr, path: Tuple[int, ...], new: Expr) -> Expr:
    """A copy of ``expr`` with the node at ``path`` replaced by ``new``."""
    if not path:
        return new
    head, rest = path[0], path[1:]
    if isinstance(expr, Unary):
        if head != 0:
            raise IndexError(f"unary node has no child {head}")
        return Unary(expr.fn, expr_replace(expr.arg, rest, new))
    if isinstance(expr, Binary):
        if head == 0:
            return Binary(expr.op, expr_replace(expr.lhs, rest, new), expr.rhs)
        if head == 1:
            return Binary(expr.op, expr.lhs, expr_replace(expr.rhs, rest, new))
        raise IndexError(f"binary node has no child {head}")
    raise IndexError(f"leaf node has no child {head}")


def expr_weight(expr: Expr) -> int:
    """Structural size used by the minimizer's strictly-decreasing measure:
    constants are the cheapest leaves, accesses cost extra per offset cell so
    zeroing offsets and demoting reads to constants both count as progress."""
    if isinstance(expr, Const):
        return 1
    if isinstance(expr, ScalarRef):
        return 2
    if isinstance(expr, Access):
        return 2 + sum(abs(o) for o in expr.offsets)
    if isinstance(expr, Unary):
        return 1 + expr_weight(expr.arg)
    if isinstance(expr, Binary):
        return 1 + expr_weight(expr.lhs) + expr_weight(expr.rhs)
    raise TypeError(f"unknown expression node {expr!r}")


def expr_arrays(expr: Expr) -> frozenset:
    """Names of every array read anywhere in the tree."""
    return frozenset(node.array for _, node in expr_paths(expr)
                     if isinstance(node, Access))


def expr_uses_scalar(expr: Expr) -> bool:
    return any(isinstance(node, ScalarRef) for _, node in expr_paths(expr))


# ---------------------------------------------------------------------------
# Kernel specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """One assignment: ``target(i, j, k) = expr`` at the loop centre."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the executable generator — half of a case's replay identity.

    A fuzz case is fully determined by ``(seed, config)``; the defaults are
    what ``python -m repro.fuzz`` and the tier-1 differential test run.
    """

    #: Fraction of specs generated in the dmp-compatible "distributed" style.
    distributed_fraction: float = 0.35
    max_rank: int = 3
    max_statements: int = 2
    max_depth: int = 3
    #: Chance a general-style spec uses width-2 stencil offsets.
    wide_offset_fraction: float = 0.25
    #: Chance a general-style spec takes the scalar parameter ``s``.
    scalar_fraction: float = 0.5
    #: Chance a general-style spec declares a second array ``b``.
    second_array_fraction: float = 0.6
    #: Chance a spec wraps its statements in a 2-sweep iteration loop.
    sweep_fraction: float = 0.3
    intrinsics: Tuple[str, ...] = EXECUTABLE_INTRINSICS

    def to_dict(self) -> Dict[str, object]:
        return {
            "distributed_fraction": self.distributed_fraction,
            "max_rank": self.max_rank,
            "max_statements": self.max_statements,
            "max_depth": self.max_depth,
            "wide_offset_fraction": self.wide_offset_fraction,
            "scalar_fraction": self.scalar_fraction,
            "second_array_fraction": self.second_array_fraction,
            "sweep_fraction": self.sweep_fraction,
            "intrinsics": list(self.intrinsics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratorConfig":
        data = dict(data)
        data["intrinsics"] = tuple(data.get("intrinsics", EXECUTABLE_INTRINSICS))
        return cls(**data)


DEFAULT_CONFIG = GeneratorConfig()


@dataclass(frozen=True)
class KernelSpec:
    """A structured, replayable, renderable fuzz kernel."""

    seed: int
    style: str  # "general" | "distributed"
    rank: int
    extents: Tuple[int, ...]
    sweeps: int
    arrays: Tuple[str, ...]
    has_scalar: bool
    max_offset: int
    statements: Tuple[Statement, ...]
    #: The generator's recorded decision trace (label, value) — replay
    #: provenance, not identity: minimized specs carry an empty trace.
    trace: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "extents", tuple(int(e) for e in self.extents))
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "statements", tuple(self.statements))
        object.__setattr__(self, "trace", tuple(tuple(t) for t in self.trace))

    # -- identity ------------------------------------------------------------

    @property
    def entry(self) -> str:
        return f"kernel_s{self.seed}"

    @property
    def min_extent(self) -> int:
        """Smallest extent with a non-empty interior under the loop bounds."""
        return 2 * self.max_offset + 3

    def written_arrays(self) -> frozenset:
        return frozenset(s.target for s in self.statements)

    def read_arrays(self) -> frozenset:
        read = frozenset()
        for s in self.statements:
            read |= expr_arrays(s.expr)
        return read

    def referenced_arrays(self) -> frozenset:
        return self.written_arrays() | self.read_arrays()

    def uses_scalar(self) -> bool:
        return self.has_scalar and any(expr_uses_scalar(s.expr)
                                       for s in self.statements)

    @property
    def flang_comparable(self) -> bool:
        """True when the flang-only (plain FIR, in-place) execution must
        agree with the stencil flow: no written array is ever read, so
        snapshot (Jacobi) and in-place semantics coincide."""
        return not (self.written_arrays() & self.read_arrays())

    def size(self) -> int:
        """Structural size: statement count plus expression weights (the
        minimizer's primary shrink metric)."""
        return len(self.statements) + sum(expr_weight(s.expr)
                                          for s in self.statements)

    def replace(self, **changes) -> "KernelSpec":
        return replace(self, **changes)

    # -- rendering -----------------------------------------------------------

    def render(self, shape: Optional[Sequence[int]] = None) -> str:
        """Fortran source for this spec, optionally over override extents.

        ``shape`` re-parameterises the array extents without touching the
        kernel body — exactly what ``distribute(source_builder=...)`` needs
        to compile one module per rank-local padded shape.
        """
        shape = tuple(int(s) for s in shape) if shape is not None else self.extents
        if len(shape) != self.rank:
            raise ValueError(
                f"shape {shape} does not match spec rank {self.rank}"
            )
        indices = LOOP_VARS[:self.rank]
        dim_params = ", ".join(f"n{d + 1} = {extent}"
                               for d, extent in enumerate(shape))
        dim_names = ", ".join(f"n{d + 1}" for d in range(self.rank))
        declarations = [
            f"  real(kind=8), intent(inout) :: {name}({dim_names})"
            for name in self.arrays
        ]
        if self.has_scalar:
            declarations.append("  real(kind=8), intent(inout) :: s")
        int_names = list(indices) + (["it"] if self.sweeps > 1 else [])
        lb = self.max_offset + 1
        opening = [
            f"  do {var} = {lb}, n{dim + 1} - {self.max_offset}"
            for dim, var in reversed(list(enumerate(indices)))
        ]
        closing = ["  end do"] * self.rank
        if self.sweeps > 1:
            opening.insert(0, f"  do it = 1, {self.sweeps}")
            closing.append("  end do")
        body = [
            f"      {s.target}({', '.join(indices)}) = "
            f"{render_expr(s.expr, indices)}"
            for s in self.statements
        ]
        args = list(self.arrays) + (["s"] if self.has_scalar else [])
        lines = [
            "",
            f"subroutine {self.entry}({', '.join(args)})",
            "  implicit none",
            f"  integer, parameter :: {dim_params}",
            *declarations,
            f"  integer :: {', '.join(int_names)}",
            *opening,
            *body,
            *closing,
            f"end subroutine {self.entry}",
            "",
        ]
        return "\n".join(lines)

    # -- serialisation (corpus persistence) ----------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "style": self.style,
            "rank": self.rank,
            "extents": list(self.extents),
            "sweeps": self.sweeps,
            "arrays": list(self.arrays),
            "has_scalar": self.has_scalar,
            "max_offset": self.max_offset,
            "statements": [
                {"target": s.target, "expr": _expr_to_dict(s.expr)}
                for s in self.statements
            ],
            "trace": [list(t) for t in self.trace],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelSpec":
        return cls(
            seed=int(data["seed"]),
            style=str(data["style"]),
            rank=int(data["rank"]),
            extents=tuple(data["extents"]),
            sweeps=int(data["sweeps"]),
            arrays=tuple(data["arrays"]),
            has_scalar=bool(data["has_scalar"]),
            max_offset=int(data["max_offset"]),
            statements=tuple(
                Statement(s["target"], _expr_from_dict(s["expr"]))
                for s in data["statements"]
            ),
            trace=tuple(tuple(t) for t in data.get("trace", [])),
        )


def _expr_to_dict(expr: Expr) -> Dict[str, object]:
    if isinstance(expr, Access):
        return {"kind": "access", "array": expr.array,
                "offsets": list(expr.offsets)}
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, ScalarRef):
        return {"kind": "scalar"}
    if isinstance(expr, Unary):
        return {"kind": "unary", "fn": expr.fn, "arg": _expr_to_dict(expr.arg)}
    if isinstance(expr, Binary):
        return {"kind": "binary", "op": expr.op,
                "lhs": _expr_to_dict(expr.lhs), "rhs": _expr_to_dict(expr.rhs)}
    raise TypeError(f"unknown expression node {expr!r}")


def _expr_from_dict(data: Dict[str, object]) -> Expr:
    kind = data["kind"]
    if kind == "access":
        return Access(str(data["array"]), tuple(data["offsets"]))
    if kind == "const":
        return Const(float(data["value"]))
    if kind == "scalar":
        return ScalarRef()
    if kind == "unary":
        return Unary(str(data["fn"]), _expr_from_dict(data["arg"]))
    if kind == "binary":
        return Binary(str(data["op"]), _expr_from_dict(data["lhs"]),
                      _expr_from_dict(data["rhs"]))
    raise ValueError(f"unknown expression kind {kind!r}")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


class _TracedRandom:
    """A ``random.Random`` facade that records every decision it hands out,
    so a generated spec carries its own provenance."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)
        self.trace: List[Tuple[str, object]] = []

    def random(self, label: str) -> float:
        value = self._rng.random()
        self.trace.append((label, round(value, 6)))
        return value

    def randrange(self, label: str, start: int, stop: int) -> int:
        value = self._rng.randrange(start, stop)
        self.trace.append((label, value))
        return value

    def choice(self, label: str, seq: Sequence):
        value = seq[self._rng.randrange(len(seq))]
        self.trace.append((label, value))
        return value

    def uniform(self, label: str, lo: float, hi: float) -> float:
        value = round(self._rng.uniform(lo, hi), 3)
        self.trace.append((label, value))
        return value


def _gen_offsets(t: _TracedRandom, label: str, rank: int, max_offset: int,
                 star: bool) -> Tuple[int, ...]:
    if star:
        # Orthogonal only: centre, or exactly one dimension displaced by one
        # (what the DMP scatter/halo machinery fills — corner ghosts stay 0).
        pick = t.randrange(f"{label}.star", 0, rank + 1)
        if pick == rank:
            return (0,) * rank
        sign = t.choice(f"{label}.sign", (-1, 1))
        return tuple(sign if d == pick else 0 for d in range(rank))
    return tuple(
        t.randrange(f"{label}.off{d}", -max_offset, max_offset + 1)
        for d in range(rank)
    )


def _gen_leaf(t: _TracedRandom, label: str, arrays: Sequence[str], rank: int,
              max_offset: int, star: bool, has_scalar: bool) -> Expr:
    kind = t.randrange(f"{label}.leaf", 0, 4)
    if kind <= 1:
        name = t.choice(f"{label}.array", arrays)
        return Access(name, _gen_offsets(t, label, rank, max_offset, star))
    if kind == 2 or not has_scalar:
        return Const(t.uniform(f"{label}.const", 0.5, 4.0))
    return ScalarRef()


def _gen_expr(t: _TracedRandom, label: str, arrays: Sequence[str], rank: int,
              max_offset: int, star: bool, has_scalar: bool,
              intrinsics: Sequence[str], depth: int) -> Expr:
    if depth <= 0 or t.random(f"{label}.stop") < 0.3:
        return _gen_leaf(t, label, arrays, rank, max_offset, star, has_scalar)
    kind = t.randrange(f"{label}.kind", 0, 3)
    if kind == 0:
        fn = t.choice(f"{label}.fn", intrinsics)
        # exp only ever applies to a leaf: bounded argument, no overflow.
        if fn == "exp":
            arg = _gen_leaf(t, f"{label}.0", arrays, rank, max_offset, star,
                            has_scalar)
        else:
            arg = _gen_expr(t, f"{label}.0", arrays, rank, max_offset, star,
                            has_scalar, intrinsics, depth - 1)
        return Unary(fn, arg)
    op = t.choice(f"{label}.op", EXECUTABLE_BINARY_OPS)
    lhs = _gen_expr(t, f"{label}.0", arrays, rank, max_offset, star,
                    has_scalar, intrinsics, depth - 1)
    rhs = _gen_expr(t, f"{label}.1", arrays, rank, max_offset, star,
                    has_scalar, intrinsics, depth - 1)
    return Binary(op, lhs, rhs)


def generate_spec(seed: int,
                  config: GeneratorConfig = DEFAULT_CONFIG) -> KernelSpec:
    """Generate the executable kernel spec for ``(seed, config)``.

    Deterministic: the same pair always yields the same spec (asserted in
    the generator tests), and the decisions taken are recorded on
    ``spec.trace``.
    """
    t = _TracedRandom(seed)
    distributed = t.random("style") < config.distributed_fraction
    if distributed:
        style = "distributed"
        rank = t.choice("rank", (2, 3))
        max_offset = 1
        arrays: Tuple[str, ...] = ("a",)
        has_scalar = False
        star = True
    else:
        style = "general"
        rank = t.randrange("rank", 1, config.max_rank + 1)
        wide = t.random("wide") < config.wide_offset_fraction
        max_offset = 2 if wide else 1
        two = t.random("second_array") < config.second_array_fraction
        arrays = ("a", "b") if two else ("a",)
        has_scalar = t.random("scalar") < config.scalar_fraction
        star = False
    min_extent = 2 * max_offset + 3
    extents = tuple(
        t.randrange(f"extent{d}", min_extent, min_extent + 5)
        for d in range(rank)
    )
    sweeps = 2 if t.random("sweeps") < config.sweep_fraction else 1
    n_statements = t.randrange("statements", 1, config.max_statements + 1)
    statements = []
    for idx in range(n_statements):
        if style == "distributed":
            target = "a"
        else:
            target = t.choice(f"target{idx}", arrays)
        depth = t.randrange(f"depth{idx}", 1, config.max_depth + 1)
        expr = _gen_expr(t, f"s{idx}", arrays, rank, max_offset, star,
                         has_scalar, config.intrinsics, depth)
        statements.append(Statement(target, expr))
    return KernelSpec(
        seed=seed, style=style, rank=rank, extents=extents, sweeps=sweeps,
        arrays=arrays, has_scalar=has_scalar, max_offset=max_offset,
        statements=tuple(statements), trace=tuple(t.trace),
    )


__all__ = [
    "LOOP_VARS",
    "UNARY_INTRINSICS",
    "BINARY_OPS",
    "gen_expression",
    "gen_kernel",
    "EXECUTABLE_INTRINSICS",
    "EXECUTABLE_BINARY_OPS",
    "Access",
    "Const",
    "ScalarRef",
    "Unary",
    "Binary",
    "Expr",
    "Statement",
    "render_expr",
    "expr_paths",
    "expr_replace",
    "expr_weight",
    "expr_arrays",
    "expr_uses_scalar",
    "GeneratorConfig",
    "DEFAULT_CONFIG",
    "KernelSpec",
    "generate_spec",
]
