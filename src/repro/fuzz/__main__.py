"""CLI driver for the differential fuzz farm.

Examples::

    # Run 50 fresh seeds through the full backend x mode matrix:
    PYTHONPATH=src python -m repro.fuzz --seeds 50

    # Bounded smoke run (CI): stop after 60 seconds, replay corpus too:
    PYTHONPATH=src python -m repro.fuzz --seeds 200 --time-budget 60

    # Replay one seed (the repro command a Divergence prints):
    PYTHONPATH=src python -m repro.fuzz --replay-seed 17

    # Replay every persisted corpus case through the full matrix:
    PYTHONPATH=src python -m repro.fuzz --replay-corpus

Exit status is non-zero when any divergence is found (or a corpus replay
regresses), so the command is CI-gateable as-is.  New divergences are
delta-debugged and saved into the corpus automatically unless
``--no-minimize`` is given.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..harness import fuzz_summary_table
from .corpus import DEFAULT_CORPUS_DIR, load_corpus, minimize_and_save, replay_entry
from .generator import DEFAULT_CONFIG, generate_spec
from .runner import DifferentialRunner, FuzzFarm


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=("Differential fuzzing: generated kernels through every "
                     "backend and execution mode, compared bitwise against "
                     "the scalar interpreter oracle."))
    parser.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="number of seeds to fuzz (default: 25)")
    parser.add_argument("--start-seed", type=int, default=0, metavar="S",
                        help="first seed of the range (default: 0)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop starting new cases after this many seconds")
    parser.add_argument("--backends", nargs="+", default=None,
                        metavar="NAME",
                        help="restrict the matrix to these backends "
                             "(default: all registered)")
    parser.add_argument("--corpus", type=Path, default=DEFAULT_CORPUS_DIR,
                        metavar="DIR",
                        help="corpus directory for minimized failures "
                             f"(default: {DEFAULT_CORPUS_DIR})")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without delta-debugging "
                             "or saving them")
    parser.add_argument("--replay-seed", type=int, default=None, metavar="S",
                        help="replay a single seed through the matrix "
                             "and exit")
    parser.add_argument("--config", default=None, metavar="LABEL",
                        help="with --replay-seed: only check this "
                             "configuration label")
    parser.add_argument("--replay-corpus", action="store_true",
                        help="replay every corpus entry through the full "
                             "matrix and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress output")
    return parser


def _replay_seed(args) -> int:
    runner = DifferentialRunner(backends=args.backends)
    spec = generate_spec(args.replay_seed, DEFAULT_CONFIG)
    print(spec.render())
    if args.config:
        diverged = runner.reproduces(spec, args.config)
        print(f"[{args.config}] {'DIVERGES' if diverged else 'ok'}")
        return 1 if diverged else 0
    result = runner.run_case(spec)
    for divergence in result.divergences:
        print(divergence.describe())
    print(f"{result.configs_run} configurations, "
          f"{len(result.divergences)} divergences")
    return 0 if result.ok else 1


def _replay_corpus(args) -> int:
    entries = load_corpus(args.corpus)
    if not entries:
        print(f"corpus {args.corpus} is empty")
        return 0
    runner = DifferentialRunner(backends=args.backends)
    regressions = 0
    for entry in entries:
        divergences = replay_entry(entry, runner)
        status = "ok" if not divergences else "REGRESSED"
        print(f"{entry.name} [{entry.config_label}] {status}")
        for divergence in divergences:
            print("  " + divergence.describe().replace("\n", "\n  "))
        regressions += len(divergences)
    print(f"{len(entries)} corpus entries replayed, {regressions} regressions")
    return 0 if regressions == 0 else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay_seed is not None:
        return _replay_seed(args)
    if args.replay_corpus:
        return _replay_corpus(args)

    farm = FuzzFarm(count=args.seeds, start=args.start_seed,
                    backends=args.backends, time_budget=args.time_budget)

    def on_case(result):
        if args.quiet:
            return
        marker = "ok " if result.ok else "DIV"
        print(f"  seed {result.spec.seed:>5} [{result.spec.style:>11}] "
              f"rank {result.spec.rank} {marker} "
              f"({result.configs_run} configs)")

    report = farm.run(on_case=on_case)
    print()
    print(fuzz_summary_table(report))
    if report.divergences:
        print()
        for divergence in report.divergences:
            print(divergence.describe())
        if not args.no_minimize:
            print()
            for divergence in report.divergences:
                entry = minimize_and_save(
                    divergence, farm.runner,
                    generator_config=farm.generator_config,
                    corpus_dir=args.corpus)
                print(f"minimized seed {divergence.seed} "
                      f"[{divergence.config_label}]: size "
                      f"{entry.original_size} -> {entry.spec.size()}, "
                      f"saved {args.corpus / (entry.name + '.json')}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
