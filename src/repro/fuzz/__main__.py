"""CLI driver for the differential fuzz farm.

Examples::

    # Run 50 fresh seeds through the full backend x mode matrix:
    PYTHONPATH=src python -m repro.fuzz --seeds 50

    # Bounded smoke run (CI): stop after 60 seconds, replay corpus too:
    PYTHONPATH=src python -m repro.fuzz --seeds 200 --time-budget 60

    # Replay one seed (the repro command a Divergence prints):
    PYTHONPATH=src python -m repro.fuzz --replay-seed 17

    # Replay every persisted corpus case through the full matrix:
    PYTHONPATH=src python -m repro.fuzz --replay-corpus

    # Churn the persistent artifact store too (repro.serve): compiles land
    # on disk; a second run with the same DIR reloads instead of lowering:
    PYTHONPATH=src python -m repro.fuzz --seeds 50 --store /tmp/repro-store

    # Chaos mode: every seed fault-free first, then under a seeded
    # FaultPlan, demanding bitwise-identical recovered outputs:
    PYTHONPATH=src python -m repro.fuzz --chaos --seeds 20

Exit status is a contract CI pins: **0** when the run is clean, **1** when
any divergence is found (or a corpus replay regresses, or a chaos fault
goes unrecovered), **2** when the harness itself crashes.  New divergences
are delta-debugged and saved into the corpus automatically unless
``--no-minimize`` is given.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path

from ..harness import fuzz_summary_table, recovery_report_table
from .chaos import ChaosFarm
from .corpus import DEFAULT_CORPUS_DIR, load_corpus, minimize_and_save, replay_entry
from .generator import DEFAULT_CONFIG, generate_spec
from .runner import DifferentialRunner, FuzzFarm


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=("Differential fuzzing: generated kernels through every "
                     "backend and execution mode, compared bitwise against "
                     "the scalar interpreter oracle."))
    parser.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="number of seeds to fuzz (default: 25)")
    parser.add_argument("--start-seed", type=int, default=0, metavar="S",
                        help="first seed of the range (default: 0)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop starting new cases after this many seconds")
    parser.add_argument("--backends", nargs="+", default=None,
                        metavar="NAME",
                        help="restrict the matrix to these backends "
                             "(default: all registered)")
    parser.add_argument("--corpus", type=Path, default=DEFAULT_CORPUS_DIR,
                        metavar="DIR",
                        help="corpus directory for minimized failures "
                             f"(default: {DEFAULT_CORPUS_DIR})")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without delta-debugging "
                             "or saving them")
    parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                        help="back the farm's session with an on-disk "
                             "artifact store at DIR (repro.serve), so the "
                             "fuzz run churns the persistent cache too")
    parser.add_argument("--replay-seed", type=int, default=None, metavar="S",
                        help="replay a single seed through the matrix "
                             "and exit")
    parser.add_argument("--config", default=None, metavar="LABEL",
                        help="with --replay-seed: only check this "
                             "configuration label")
    parser.add_argument("--replay-corpus", action="store_true",
                        help="replay every corpus entry through the full "
                             "matrix and exit")
    parser.add_argument("--schedules", action="store_true",
                        help="schedule mode: draw a random legal schedule "
                             "chain (fuse/tile/reorder/unroll) per seed and "
                             "backend and prove each bitwise-identical to "
                             "the unscheduled artifact via Schedule.verify()")
    parser.add_argument("--chaos", action="store_true",
                        help="chaos mode: re-run each seed under a seeded "
                             "fault plan (message faults, rank crashes, "
                             "device OOM, compile failures) and demand "
                             "bitwise-identical recovered outputs")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress output")
    return parser


def _replay_seed(args) -> int:
    runner = DifferentialRunner(backends=args.backends)
    spec = generate_spec(args.replay_seed, DEFAULT_CONFIG)
    print(spec.render())
    if args.config:
        diverged = runner.reproduces(spec, args.config)
        print(f"[{args.config}] {'DIVERGES' if diverged else 'ok'}")
        return 1 if diverged else 0
    result = runner.run_case(spec)
    for divergence in result.divergences:
        print(divergence.describe())
    print(f"{result.configs_run} configurations, "
          f"{len(result.divergences)} divergences")
    return 0 if result.ok else 1


def _replay_corpus(args) -> int:
    entries = load_corpus(args.corpus)
    if not entries:
        print(f"corpus {args.corpus} is empty")
        return 0
    runner = DifferentialRunner(backends=args.backends)
    regressions = 0
    for entry in entries:
        divergences = replay_entry(entry, runner)
        status = "ok" if not divergences else "REGRESSED"
        print(f"{entry.name} [{entry.config_label}] {status}")
        for divergence in divergences:
            print("  " + divergence.describe().replace("\n", "\n  "))
        regressions += len(divergences)
    print(f"{len(entries)} corpus entries replayed, {regressions} regressions")
    return 0 if regressions == 0 else 1


def _schedules(args) -> int:
    from .schedules import ScheduleFuzzFarm

    session = None
    if args.store is not None:
        from ..api.session import Session
        from ..serve import ArtifactStore

        session = Session(store=ArtifactStore(args.store))
    farm = ScheduleFuzzFarm(count=args.seeds, start=args.start_seed,
                            session=session, time_budget=args.time_budget)

    def on_case(result):
        if args.quiet:
            return
        marker = "ok " if result.ok else "DIV"
        chains = "; ".join(f"{label}: {chain or '-'}"
                           for label, chain in result.chains)
        print(f"  seed {result.spec.seed:>5} {marker} {chains}")

    report = farm.run(on_case=on_case)
    print()
    print(report.summary())
    for divergence in report.divergences:
        print()
        print(divergence.describe())
    return 0 if report.ok else 1


def _chaos(args) -> int:
    farm = ChaosFarm(count=args.seeds, start=args.start_seed,
                     time_budget=args.time_budget)

    def on_case(result):
        if args.quiet:
            return
        marker = "ok " if result.ok else "DIV"
        print(f"  seed {result.spec.seed:>5} [{result.spec.style:>11}] "
              f"{marker} ({result.scenarios_run} scenarios, "
              f"{result.recovery.faults_injected} faults)")

    report = farm.run(on_case=on_case)
    print()
    print(recovery_report_table(report))
    for divergence in report.divergences:
        print()
        print(divergence.describe())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay_seed is not None:
        return _replay_seed(args)
    if args.replay_corpus:
        return _replay_corpus(args)
    if args.schedules:
        return _schedules(args)
    if args.chaos:
        return _chaos(args)

    session = None
    if args.store is not None:
        # Churn the on-disk artifact store under the farm: every generated
        # kernel's compile lands on disk and warm reruns reload from it.
        # The exit-code contract is unchanged — store failures are misses.
        from ..api.session import Session
        from ..serve import ArtifactStore

        session = Session(store=ArtifactStore(args.store))
    farm = FuzzFarm(count=args.seeds, start=args.start_seed,
                    backends=args.backends, time_budget=args.time_budget,
                    session=session)

    def on_case(result):
        if args.quiet:
            return
        marker = "ok " if result.ok else "DIV"
        print(f"  seed {result.spec.seed:>5} [{result.spec.style:>11}] "
              f"rank {result.spec.rank} {marker} "
              f"({result.configs_run} configs)")

    report = farm.run(on_case=on_case)
    print()
    print(fuzz_summary_table(report))
    if report.divergences:
        print()
        for divergence in report.divergences:
            print(divergence.describe())
        if not args.no_minimize:
            print()
            for divergence in report.divergences:
                entry = minimize_and_save(
                    divergence, farm.runner,
                    generator_config=farm.generator_config,
                    corpus_dir=args.corpus)
                print(f"minimized seed {divergence.seed} "
                      f"[{divergence.config_label}]: size "
                      f"{entry.original_size} -> {entry.spec.size()}, "
                      f"saved {args.corpus / (entry.name + '.json')}")
    return 0 if report.ok else 1


def run(argv=None) -> int:
    """CLI entry with the pinned exit-code contract: 0 clean, 1 divergence
    (or unrecovered chaos fault / corpus regression), 2 harness crash."""
    try:
        return main(argv)
    except SystemExit as exc:  # argparse errors keep their own codes
        code = exc.code
        return code if isinstance(code, int) else 2
    except KeyboardInterrupt:
        raise
    except BaseException:
        traceback.print_exc()
        return 2


if __name__ == "__main__":
    sys.exit(run())
