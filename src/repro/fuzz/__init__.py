"""Differential fuzz farm: generative kernels, every backend, one oracle.

The subsystem has four layers (ROADMAP open item 4):

* :mod:`repro.fuzz.generator` — seeded, trace-recording generation of
  *executable* stencil kernels as structured :class:`KernelSpec` trees
  (rank, nest depth, offsets, intrinsics, sweeps, grid shapes), rendered
  to Fortran on demand;
* :mod:`repro.fuzz.runner` — the differential matrix: each spec compiled
  through every registered backend via the fluent ``Program`` API, run
  across ``interpret``/``vectorize``/``crosscheck`` modes and thread /
  rank / stream counts, all outputs compared bitwise against the scalar
  interpreter oracle;
* :mod:`repro.fuzz.minimizer` — deterministic delta-debugging of any
  divergent spec while the divergence still reproduces;
* :mod:`repro.fuzz.corpus` — the persisted ``fuzz/corpus/`` of minimized
  regression kernels that tier-1 replays;
* :mod:`repro.fuzz.chaos` — chaos mode: each seed runs fault-free, then
  again under a seeded :class:`repro.resilience.FaultPlan`, and the
  recovered outputs must be bitwise identical.

CLI: ``python -m repro.fuzz --seeds N [--time-budget S] [--chaos]``.
"""

from .chaos import (
    ChaosCaseResult,
    ChaosFarm,
    ChaosReport,
    ChaosRunner,
)
from .corpus import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    entry_from_divergence,
    load_corpus,
    minimize_and_save,
    replay_entry,
    save_entry,
)
from .generator import (
    DEFAULT_CONFIG,
    GeneratorConfig,
    KernelSpec,
    gen_expression,
    gen_kernel,
    generate_spec,
)
from .minimizer import MinimizationResult, minimize
from .runner import (
    BackendConfig,
    CaseResult,
    DifferentialRunner,
    Divergence,
    FuzzFarm,
    FuzzReport,
    default_matrix,
)

__all__ = [
    "BackendConfig",
    "CaseResult",
    "ChaosCaseResult",
    "ChaosFarm",
    "ChaosReport",
    "ChaosRunner",
    "CorpusEntry",
    "DEFAULT_CONFIG",
    "DEFAULT_CORPUS_DIR",
    "DifferentialRunner",
    "Divergence",
    "FuzzFarm",
    "FuzzReport",
    "GeneratorConfig",
    "KernelSpec",
    "MinimizationResult",
    "default_matrix",
    "entry_from_divergence",
    "gen_expression",
    "gen_kernel",
    "generate_spec",
    "load_corpus",
    "minimize",
    "minimize_and_save",
    "replay_entry",
    "save_entry",
]
