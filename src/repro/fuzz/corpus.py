"""Persisted regression corpus of minimized divergent kernels.

Every divergence the farm catches is minimized and saved as a corpus
entry: a JSON file holding the **spec** (the authoritative, replayable
artifact), the divergent configuration label, the generator config, and a
shell repro command — plus the rendered minimal ``.f90`` next to it for
human eyes.  Tier-1 replays the whole corpus through the differential
runner on every run (``tests/fuzz/test_corpus_replay.py``): a corpus
entry is a *fixed* miscompile, so replay must report **zero** divergences.

Entries live in ``fuzz/corpus/`` at the repository root and are committed;
the directory is the long-term memory of every bug the farm ever found.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .generator import DEFAULT_CONFIG, GeneratorConfig, KernelSpec
from .minimizer import minimize
from .runner import DifferentialRunner, Divergence

#: Default corpus location: ``<repo root>/fuzz/corpus``.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "fuzz" / "corpus"


@dataclass
class CorpusEntry:
    """One minimized regression case."""

    name: str
    seed: int
    config_label: str
    kind: str
    detail: str
    spec: KernelSpec
    generator_config: GeneratorConfig
    repro_command: str
    #: Spec size before minimization, for the record.
    original_size: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "config_label": self.config_label,
            "kind": self.kind,
            "detail": self.detail,
            "spec": self.spec.to_dict(),
            "generator_config": self.generator_config.to_dict(),
            "repro_command": self.repro_command,
            "original_size": self.original_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusEntry":
        return cls(
            name=data["name"],
            seed=data["seed"],
            config_label=data["config_label"],
            kind=data["kind"],
            detail=data["detail"],
            spec=KernelSpec.from_dict(data["spec"]),
            generator_config=GeneratorConfig.from_dict(
                data.get("generator_config", {})),
            repro_command=data.get("repro_command", ""),
            original_size=data.get("original_size", 0),
        )


def entry_from_divergence(divergence: Divergence,
                          minimized: KernelSpec,
                          generator_config: GeneratorConfig = DEFAULT_CONFIG
                          ) -> CorpusEntry:
    safe_label = divergence.config_label.replace("/", "-")
    return CorpusEntry(
        name=f"seed{divergence.seed}-{safe_label}",
        seed=divergence.seed,
        config_label=divergence.config_label,
        kind=divergence.kind,
        detail=divergence.detail,
        spec=minimized,
        generator_config=generator_config,
        repro_command=divergence.repro_command,
        original_size=divergence.spec.size(),
    )


def save_entry(entry: CorpusEntry,
               corpus_dir: Path = DEFAULT_CORPUS_DIR) -> Path:
    """Write ``<name>.json`` (authoritative) and ``<name>.f90`` (rendered)."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    json_path = corpus_dir / f"{entry.name}.json"
    json_path.write_text(json.dumps(entry.to_dict(), indent=2,
                                    sort_keys=True) + "\n")
    (corpus_dir / f"{entry.name}.f90").write_text(entry.spec.render())
    return json_path


def load_corpus(corpus_dir: Path = DEFAULT_CORPUS_DIR) -> List[CorpusEntry]:
    if not corpus_dir.is_dir():
        return []
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        entries.append(CorpusEntry.from_dict(json.loads(path.read_text())))
    return entries


def replay_entry(entry: CorpusEntry,
                 runner: Optional[DifferentialRunner] = None) -> List[Divergence]:
    """Re-run one corpus spec through the *full* matrix; a fixed bug must
    come back clean, so any divergence returned is a regression."""
    if runner is None:
        runner = DifferentialRunner()
    return runner.run_case(entry.spec).divergences


def minimize_and_save(divergence: Divergence,
                      runner: DifferentialRunner,
                      generator_config: GeneratorConfig = DEFAULT_CONFIG,
                      corpus_dir: Path = DEFAULT_CORPUS_DIR) -> CorpusEntry:
    """The farm's capture path: delta-debug the divergent spec against its
    configuration, persist the minimal kernel, return the entry."""
    result = minimize(
        divergence.spec,
        lambda spec: runner.reproduces(spec, divergence.config_label))
    entry = entry_from_divergence(divergence, result.minimized,
                                  generator_config)
    save_entry(entry, corpus_dir)
    return entry


__all__ = [
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "entry_from_divergence",
    "save_entry",
    "load_corpus",
    "replay_entry",
    "minimize_and_save",
]
