"""Chaos mode: generated kernels under seeded fault plans.

PR 6's discipline was *inject a miscompile deterministically, demand the
farm catches it*.  Chaos mode applies the same discipline to runtime
faults: each fuzz seed first runs **fault-free** to establish a baseline,
then re-runs under a :class:`repro.resilience.FaultPlan` drawn from the
same seed, and the recovered outputs must be **bitwise identical** to the
baseline.  Three scenarios per case, matched to the three injectable
runtime layers:

* ``dmp-chaos`` (distributed-style specs): a multi-rank resilient run with
  dropped/delayed/duplicated/corrupted halo messages plus one rank crash
  mid-run, recovered by the retrying communicator and checkpoint/restart;
* ``gpu-chaos``: a gpu run whose :class:`SimulatedGPU` fails chosen device
  allocations, recovered by the graceful-degradation ladder (evict idle →
  host staging);
* ``compile-chaos``: a throwaway session whose compile hook fails the first
  compile transiently, recovered by the session's single retry.

Every injected fault and recovery action lands in one merged
:class:`repro.resilience.RecoveryReport`; a chaos run is clean only when
there are **0 divergences and 0 unrecovered faults**.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from ..api.session import Session
from ..resilience import (
    AllocFault,
    CommFault,
    CompileFault,
    FaultInjector,
    FaultPlan,
    RankCrash,
    RecoveryReport,
    ReportSink,
    ResilienceOptions,
)
from ..runtime.gpu_runtime import SimulatedGPU
from .generator import DEFAULT_CONFIG, GeneratorConfig, KernelSpec, generate_spec
from .runner import _DMP_ITERATIONS, DifferentialRunner, Divergence

#: Process grid for the distributed chaos scenario (same as the farm's
#: widest dmp cell).
_CHAOS_GRID = (2, 2)


@dataclass
class ChaosCaseResult:
    """One seed's chaos verdict: scenarios run, divergences, recoveries."""

    spec: KernelSpec
    scenarios_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    recovery: RecoveryReport = field(default_factory=RecoveryReport)

    @property
    def ok(self) -> bool:
        return not self.divergences and self.recovery.ok


@dataclass
class ChaosReport:
    """Aggregated chaos results, rendered by
    ``repro.harness.recovery_report_table``."""

    cases: int = 0
    scenarios_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    seconds: float = 0.0
    budget_exhausted: bool = False
    seeds_skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences and self.recovery.ok

    def merge_case(self, result: ChaosCaseResult) -> None:
        self.cases += 1
        self.scenarios_run += result.scenarios_run
        self.divergences.extend(result.divergences)
        self.recovery.merge(result.recovery)


class ChaosRunner:
    """Runs one spec fault-free, then under a seeded plan, compares bitwise."""

    def __init__(self, session: Optional[Session] = None):
        self.runner = DifferentialRunner(session=session)

    @property
    def session(self) -> Session:
        return self.runner.session

    # -- scenarios -----------------------------------------------------------

    def _dmp_plan(self, spec: KernelSpec):
        """The fluent distributed plan the dmp scenario runs (compiled on the
        shared session, so baseline and faulted runs share artifacts)."""
        compiled = self.session.compile(spec.render()).lower(
            "dmp", grid=_CHAOS_GRID, execution_mode="vectorize")
        return compiled.distribute(
            source_builder=lambda shape: spec.render(shape=shape),
            entry=spec.entry,
        )

    def _run_dmp_chaos(self, spec: KernelSpec, result: ChaosCaseResult) -> None:
        plan = self._dmp_plan(spec)
        arrays, _ = self.runner.inputs_for(spec)
        seed_field = arrays[spec.arrays[0]]
        baseline = plan.run(seed_field, iterations=_DMP_ITERATIONS)
        fault_plan = FaultPlan(
            seed=spec.seed,
            comm_faults=FaultPlan.generate(spec.seed, comm_faults=4).comm_faults,
            rank_crashes=(RankCrash(rank=spec.seed % 4,
                                    iteration=spec.seed % _DMP_ITERATIONS),),
        )
        faulted = plan.run(
            seed_field, iterations=_DMP_ITERATIONS,
            resilience=ResilienceOptions(plan=fault_plan))
        result.recovery.merge(faulted.recovery)
        result.scenarios_run += 1
        self._compare(spec, "dmp-chaos", result,
                      {spec.arrays[0]: baseline.field},
                      {spec.arrays[0]: faulted.field})

    def _run_gpu_chaos(self, spec: KernelSpec, result: ChaosCaseResult) -> None:
        baseline, _ = self.runner._run_plain(spec, "gpu", "vectorize", 1, {})
        sink = ReportSink(result.recovery)
        injector = FaultInjector(
            FaultPlan(seed=spec.seed,
                      alloc_faults=(AllocFault(index=spec.seed % 2),)),
            sink)
        gpu = SimulatedGPU(num_streams=2,
                           alloc_hook=injector.on_device_alloc)
        compiled = self.session.compile(spec.render()).lower(
            "gpu", execution_mode="vectorize")
        arrays, scalar = self.runner.inputs_for(spec)
        work = {name: arr.copy(order="F") for name, arr in arrays.items()}
        interp = compiled.interpreter(gpu=gpu)
        with np.errstate(over="ignore", invalid="ignore"):
            interp.call(spec.entry,
                        *self.runner._call_args(spec, work, scalar))
        sink.add_counters(gpu.degradation)
        sink.add_counters(
            {"scalar_fallbacks": int(interp.stats.get("gpu_launch_fallbacks",
                                                      0))})
        result.scenarios_run += 1
        self._compare(spec, "gpu-chaos", result, baseline, work)

    def _run_compile_chaos(self, spec: KernelSpec,
                           result: ChaosCaseResult) -> None:
        baseline, _ = self.runner._run_plain(spec, "cpu", "vectorize", 1, {})
        sink = ReportSink(result.recovery)
        injector = FaultInjector(
            FaultPlan(seed=spec.seed,
                      compile_faults=(CompileFault(index=0, count=1),)),
            sink)
        # A throwaway session: its compiles must actually run (no warm cache)
        # and its quarantine records must not leak into the shared session.
        scratch = Session(registry=self.session.registry)
        scratch.compile_hook = injector.on_compile
        compiled = scratch.compile(spec.render()).lower(
            "cpu", execution_mode="vectorize")
        arrays, scalar = self.runner.inputs_for(spec)
        work = {name: arr.copy(order="F") for name, arr in arrays.items()}
        with np.errstate(over="ignore", invalid="ignore"):
            compiled.interpreter().call(
                spec.entry, *self.runner._call_args(spec, work, scalar))
        sink.add_counters(scratch.resilience_stats)
        result.scenarios_run += 1
        self._compare(spec, "compile-chaos", result, baseline, work)

    # -- comparison ----------------------------------------------------------

    def _compare(self, spec: KernelSpec, label: str,
                 result: ChaosCaseResult, expected, actual) -> None:
        differing, max_diff = self.runner.compare(expected, actual)
        if differing:
            result.recovery.unrecovered += 1
            result.divergences.append(Divergence(
                seed=spec.seed, config_label=label, backend=label,
                kind="bitwise",
                detail="recovered outputs differ from the fault-free run",
                spec=spec, arrays=differing, max_abs_diff=max_diff))

    # -- the per-case driver -------------------------------------------------

    def run_case(self, spec: KernelSpec) -> ChaosCaseResult:
        result = ChaosCaseResult(spec=spec)
        scenarios: List[Callable[[KernelSpec, ChaosCaseResult], None]] = [
            self._run_gpu_chaos,
            self._run_compile_chaos,
        ]
        if spec.style == "distributed":
            scenarios.insert(0, self._run_dmp_chaos)
        for scenario in scenarios:
            try:
                scenario(spec, result)
            except Exception as err:  # noqa: BLE001 — an unhandled fault IS a finding
                result.scenarios_run += 1
                result.recovery.unrecovered += 1
                result.divergences.append(Divergence(
                    seed=spec.seed,
                    config_label=scenario.__name__.replace("_run_", ""),
                    backend="chaos", kind="error",
                    detail=f"{type(err).__name__}: {err}", spec=spec))
        return result


class ChaosFarm:
    """Drives N seeds through the chaos runner under a time budget."""

    def __init__(self, seeds: Optional[Iterable[int]] = None, *,
                 count: Optional[int] = None, start: int = 0,
                 generator_config: GeneratorConfig = DEFAULT_CONFIG,
                 session: Optional[Session] = None,
                 time_budget: Optional[float] = None):
        if seeds is None:
            seeds = range(start, start + (count if count is not None else 10))
        self.seeds = list(seeds)
        self.generator_config = generator_config
        self.time_budget = time_budget
        self.runner = ChaosRunner(session=session)

    @property
    def session(self) -> Session:
        return self.runner.session

    def run(self, on_case: Optional[Callable[[ChaosCaseResult], None]] = None
            ) -> ChaosReport:
        report = ChaosReport()
        started = time.perf_counter()
        for position, seed in enumerate(self.seeds):
            if (self.time_budget is not None
                    and time.perf_counter() - started > self.time_budget):
                report.budget_exhausted = True
                report.seeds_skipped = len(self.seeds) - position
                break
            spec = generate_spec(seed, self.generator_config)
            result = self.runner.run_case(spec)
            report.merge_case(result)
            if on_case is not None:
                on_case(result)
        report.seconds = time.perf_counter() - started
        return report


__all__ = [
    "ChaosCaseResult",
    "ChaosReport",
    "ChaosRunner",
    "ChaosFarm",
]
