"""Delta-debugging minimizer for divergent fuzz kernels.

Given a :class:`~repro.fuzz.generator.KernelSpec` and a ``reproduces``
predicate (typically :meth:`DifferentialRunner.reproduces` bound to the
divergent configuration label), the minimizer repeatedly proposes smaller
candidate specs and keeps any candidate for which the divergence still
reproduces.  Reduction passes, in the order they are attempted each round:

1. **drop statements** — remove one assignment at a time;
2. **simplify expressions** — replace any subtree with one of its children
   or with the constant ``1.0`` (this subsumes "zero offsets": an ``Access``
   with offsets collapses to a constant);
3. **zero offsets** — rewrite a neighbour access to the loop centre;
4. **drop arrays / scalar** — remove an unused second array or the unused
   scalar parameter from the signature;
5. **shrink nests** — reduce the rank by dropping the outermost dimension
   (only when every access is centred in that dimension);
6. **shrink domains** — clamp every extent toward the minimum legal extent,
   and reduce the sweep count to 1.

Termination is guaranteed: every accepted candidate strictly decreases the
structural measure :meth:`KernelSpec.size` plus the extent sum, both bounded
below.  The whole process is deterministic — candidate order is fixed, no
randomness is drawn — so a given ``(seed, config)`` minimizes to the same
kernel every time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Tuple

from .generator import (
    Access,
    Const,
    KernelSpec,
    Statement,
    expr_arrays,
    expr_paths,
    expr_replace,
    expr_uses_scalar,
)


@dataclass
class MinimizationResult:
    """The outcome of a minimization run."""

    original: KernelSpec
    minimized: KernelSpec
    steps: int
    candidates_tried: int

    @property
    def reduced(self) -> bool:
        return self.minimized.size() < self.original.size() or (
            sum(self.minimized.extents) < sum(self.original.extents))


def _measure(spec: KernelSpec) -> Tuple[int, int, int]:
    """The strictly-decreasing well-founded measure: structural size, then
    total domain extent, then sweep count."""
    return (spec.size(), sum(spec.extents), spec.sweeps)


def _with_statements(spec: KernelSpec,
                     statements: List[Statement]) -> KernelSpec:
    return replace(spec, statements=tuple(statements))


def _prune_signature(spec: KernelSpec) -> KernelSpec:
    """Drop arrays/scalar no longer referenced by any statement.  The first
    array always stays — it is the distributed entry's field argument and
    every statement writes it."""
    used = set()
    scalar_used = False
    for stmt in spec.statements:
        used.add(stmt.target)
        used |= expr_arrays(stmt.expr)
        scalar_used = scalar_used or expr_uses_scalar(stmt.expr)
    arrays = tuple(name for index, name in enumerate(spec.arrays)
                   if index == 0 or name in used)
    has_scalar = spec.has_scalar and scalar_used
    if arrays != spec.arrays or has_scalar != spec.has_scalar:
        spec = replace(spec, arrays=arrays, has_scalar=has_scalar)
    return spec


def _candidates(spec: KernelSpec) -> Iterator[KernelSpec]:
    """Smaller candidate specs, most-aggressive first within each pass."""
    # Pass 1: drop whole statements (keep at least one).
    if len(spec.statements) > 1:
        for index in range(len(spec.statements)):
            kept = [s for i, s in enumerate(spec.statements) if i != index]
            yield _prune_signature(_with_statements(spec, kept))

    # Pass 2: replace any expression subtree with a child or a constant.
    for stmt_index, stmt in enumerate(spec.statements):
        for path, node in expr_paths(stmt.expr):
            replacements = []
            if hasattr(node, "arg"):
                replacements.append(node.arg)
            if hasattr(node, "lhs"):
                replacements.extend((node.lhs, node.rhs))
            if not isinstance(node, Const):
                replacements.append(Const(1.0))
            for repl in replacements:
                new_expr = expr_replace(stmt.expr, path, repl)
                if new_expr == stmt.expr:
                    continue
                statements = list(spec.statements)
                statements[stmt_index] = Statement(stmt.target, new_expr)
                yield _prune_signature(_with_statements(spec, statements))

    # Pass 3: zero out neighbour offsets (centre the access).
    for stmt_index, stmt in enumerate(spec.statements):
        for path, node in expr_paths(stmt.expr):
            if isinstance(node, Access) and any(node.offsets):
                centred = Access(node.array, (0,) * len(node.offsets))
                new_expr = expr_replace(stmt.expr, path, centred)
                statements = list(spec.statements)
                statements[stmt_index] = Statement(stmt.target, new_expr)
                yield _with_statements(spec, statements)

    # Pass 4: shrink the nest — drop the outermost dimension when no access
    # offsets along it (every rendered subscript there is the loop centre).
    # Distributed specs stay at rank >= 2: the process-grid decomposition
    # needs two partitionable dimensions.
    min_rank = 2 if spec.style == "distributed" else 1
    if spec.rank > min_rank:
        axis = spec.rank - 1  # outermost loop == last dimension
        can_drop = all(
            not isinstance(node, Access) or node.offsets[axis] == 0
            for stmt in spec.statements
            for _, node in expr_paths(stmt.expr))
        if can_drop:
            statements = []
            for stmt in spec.statements:
                def strip(expr):
                    for path, node in expr_paths(expr):
                        if isinstance(node, Access):
                            expr = expr_replace(
                                expr, path,
                                Access(node.array, node.offsets[:axis]))
                    return expr
                statements.append(Statement(stmt.target, strip(stmt.expr)))
            yield _with_statements(
                replace(spec, rank=spec.rank - 1,
                        extents=spec.extents[:axis]),
                statements)

    # Pass 5: shrink domains and sweeps.
    floor = spec.min_extent
    if any(extent > floor for extent in spec.extents):
        yield replace(spec, extents=tuple(floor for _ in spec.extents))
        shrunk = tuple(max(floor, extent - 1) for extent in spec.extents)
        if shrunk != spec.extents:
            yield replace(spec, extents=shrunk)
    if spec.sweeps > 1:
        yield replace(spec, sweeps=1)


def minimize(spec: KernelSpec,
             reproduces: Callable[[KernelSpec], bool],
             max_rounds: int = 200) -> MinimizationResult:
    """Greedy delta-debugging: accept the first strictly-smaller candidate
    that still reproduces, restart the pass list, stop at a fixed point."""
    current = spec
    steps = 0
    tried = 0
    for _ in range(max_rounds):
        improved = False
        for candidate in _candidates(current):
            if _measure(candidate) >= _measure(current):
                continue
            tried += 1
            if reproduces(candidate):
                current = candidate
                steps += 1
                improved = True
                break
        if not improved:
            break
    return MinimizationResult(original=spec, minimized=current,
                              steps=steps, candidates_tried=tried)


__all__ = ["minimize", "MinimizationResult"]
