"""Fortran lexer.

Tokenises free-form Fortran source for the subset handled by the frontend.
Fortran is case-insensitive: identifiers and keywords are lowercased.  The
lexer folds continuation lines (``&``), strips comments (``!``) and produces a
NEWLINE token at each statement boundary (newline or ``;``).
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional


class LexError(Exception):
    """Raised for characters or constructs the lexer does not understand."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


#: Keywords recognised as their own token kind (lowercase).
KEYWORDS = frozenset(
    {
        "program",
        "subroutine",
        "function",
        "end",
        "do",
        "enddo",
        "if",
        "then",
        "else",
        "elseif",
        "endif",
        "implicit",
        "none",
        "integer",
        "real",
        "double",
        "precision",
        "logical",
        "parameter",
        "dimension",
        "intent",
        "in",
        "out",
        "inout",
        "allocatable",
        "allocate",
        "deallocate",
        "call",
        "return",
        "exit",
        "cycle",
        "while",
        "print",
        "write",
        "use",
        "contains",
        "module",
        "kind",
        "result",
        "stop",
    }
)

_TOKEN_SPEC = [
    ("REAL", r"\d+\.\d*([dDeE][+-]?\d+)?(_\w+)?|\d+[dDeE][+-]?\d+(_\w+)?|\.\d+([dDeE][+-]?\d+)?(_\w+)?"),
    ("INT", r"\d+(_\w+)?"),
    ("DOTOP", r"\.(and|or|not|eqv|neqv|true|false|eq|ne|lt|le|gt|ge)\."),
    ("IDENT", r"[A-Za-z][A-Za-z0-9_]*"),
    ("DCOLON", r"::"),
    ("POW", r"\*\*"),
    ("CONCAT", r"//"),
    ("LE", r"<="),
    ("GE", r">="),
    ("EQ", r"=="),
    ("NE", r"/="),
    ("ARROW", r"=>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("LT", r"<"),
    ("GT", r">"),
    ("ASSIGN", r"="),
    ("COLON", r":"),
    ("PERCENT", r"%"),
    ("SEMI", r";"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
]

_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
)


def _strip_comment(line: str) -> str:
    """Remove a trailing ``!`` comment, respecting string literals."""
    in_single = in_double = False
    for i, ch in enumerate(line):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "!" and not in_single and not in_double:
            return line[:i]
    return line


def _fold_continuations(source: str) -> List[tuple]:
    """Join continuation lines; returns a list of (logical_line, first_lineno)."""
    logical: List[tuple] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            if pending:
                continue
            continue
        if not pending:
            pending_line = lineno
        stripped = line.strip()
        if stripped.startswith("&"):
            stripped = stripped[1:]
        if stripped.endswith("&"):
            pending += stripped[:-1] + " "
            continue
        pending += stripped
        logical.append((pending, pending_line))
        pending = ""
    if pending:
        logical.append((pending, pending_line))
    return logical


def tokenize(source: str) -> List[Token]:
    """Tokenise a complete Fortran source string."""
    tokens: List[Token] = []
    for line, lineno in _fold_continuations(source):
        column = 0
        while column < len(line):
            ch = line[column]
            if ch in " \t":
                column += 1
                continue
            match = _MASTER_RE.match(line, column)
            if match is None:
                raise LexError(f"unexpected character {ch!r}", lineno, column + 1)
            kind = match.lastgroup or ""
            value = match.group(0)
            if kind == "IDENT":
                value = value.lower()
                if value in KEYWORDS:
                    kind = "KEYWORD"
            elif kind == "DOTOP":
                value = value.lower()
            elif kind == "SEMI":
                kind = "NEWLINE"
            tokens.append(Token(kind, value, lineno, column + 1))
            column = match.end()
        tokens.append(Token("NEWLINE", "\n", lineno, len(line) + 1))
    tokens.append(Token("EOF", "", len(tokens), 0))
    return tokens


__all__ = ["Token", "tokenize", "LexError", "KEYWORDS"]
