"""Fortran frontend ("mini-Flang"): lexer, parser, semantics, FIR generation.

The top-level helper :func:`compile_to_fir` is the equivalent of running
``flang -fc1 -emit-mlir`` in the paper's pipeline: Fortran source text in, a
FIR-dialect module out.
"""

from .ast_nodes import ProgramUnit, SourceFile
from .fir_gen import CodegenError, generate_fir
from .lexer import LexError, Token, tokenize
from .parser import FortranParser, FortranSyntaxError, parse_source
from .symbols import DimInfo, SemanticError, Symbol, SymbolTable


def compile_to_fir(source: str):
    """Parse Fortran ``source`` and lower it to a FIR-dialect module."""
    return generate_fir(parse_source(source))


__all__ = [
    "tokenize",
    "Token",
    "LexError",
    "parse_source",
    "FortranParser",
    "FortranSyntaxError",
    "SourceFile",
    "ProgramUnit",
    "SymbolTable",
    "Symbol",
    "DimInfo",
    "SemanticError",
    "generate_fir",
    "CodegenError",
    "compile_to_fir",
]
