"""Semantic analysis: symbol tables and compile-time constant evaluation.

The FIR generator needs to know, for every name, whether it is a scalar or an
array, its element type, its declared bounds and whether it is a dummy
argument, a ``parameter`` constant or an ``allocatable``.  Array extents that
are constant expressions (literals and ``parameter`` names) are folded here so
that static FIR array types can be produced, matching what Flang does for
constant-shaped local arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .ast_nodes import (
    BinaryOp,
    Declaration,
    DimSpec,
    Expr,
    IntLiteral,
    IntrinsicCall,
    ProgramUnit,
    RealLiteral,
    UnaryOp,
    VarRef,
)


class SemanticError(Exception):
    """Raised for programs that are syntactically valid but not analysable."""


@dataclass
class DimInfo:
    """Resolved bounds of one array dimension.

    ``lower``/``upper`` are ints when constant; ``None`` marks a bound that is
    only known at run time (deferred or dummy-argument dependent).
    """

    lower: Optional[int] = 1
    upper: Optional[int] = None
    lower_expr: Optional[Expr] = None
    upper_expr: Optional[Expr] = None

    @property
    def extent(self) -> Optional[int]:
        if self.lower is None or self.upper is None:
            return None
        return self.upper - self.lower + 1

    @property
    def is_static(self) -> bool:
        return self.extent is not None


@dataclass
class Symbol:
    """Everything known about one declared name."""

    name: str
    base_type: str = "real"  # 'integer' | 'real' | 'logical'
    kind: int = 4
    dims: List[DimInfo] = field(default_factory=list)
    is_parameter: bool = False
    is_dummy: bool = False
    is_allocatable: bool = False
    intent: Optional[str] = None
    parameter_value: Optional[Union[int, float]] = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    def static_shape(self) -> Optional[Tuple[int, ...]]:
        """Shape tuple if every extent is compile-time constant, else None."""
        extents = []
        for dim in self.dims:
            if dim.extent is None:
                return None
            extents.append(dim.extent)
        return tuple(extents)


class SymbolTable:
    """Per-program-unit symbol table."""

    def __init__(self, unit: ProgramUnit):
        self.unit = unit
        self.symbols: Dict[str, Symbol] = {}
        self._build()

    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def __getitem__(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise SemanticError(
                f"'{name}' is not declared in unit '{self.unit.name}' "
                "(the frontend requires 'implicit none' style explicit declarations)"
            ) from None

    def get(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name)

    def values(self):
        return self.symbols.values()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        for decl in self.unit.declarations:
            self._add_declaration(decl)
        for arg in self.unit.args:
            if arg not in self.symbols:
                raise SemanticError(
                    f"dummy argument '{arg}' of '{self.unit.name}' has no declaration"
                )
            self.symbols[arg].is_dummy = True

    def _add_declaration(self, decl: Declaration) -> None:
        base_type = decl.base_type
        kind = decl.kind
        if base_type == "real" and kind not in (4, 8):
            kind = 8
        for entity in decl.entities:
            symbol = Symbol(
                name=entity.name,
                base_type=base_type,
                kind=kind,
                is_parameter="parameter" in decl.attributes,
                is_allocatable="allocatable" in decl.attributes,
                intent=decl.intent,
            )
            if symbol.is_parameter:
                if entity.init is None:
                    raise SemanticError(
                        f"parameter '{entity.name}' must have an initialiser"
                    )
                symbol.parameter_value = self.evaluate_constant(entity.init)
            self.symbols[entity.name] = symbol
            # Dims may reference parameters declared earlier, so resolve after
            # the symbol exists (self-reference is not allowed).
            symbol.dims = [self._resolve_dim(d) for d in entity.dims]

    def _resolve_dim(self, spec: DimSpec) -> DimInfo:
        info = DimInfo()
        if spec.lower is None:
            info.lower = 1
        else:
            info.lower_expr = spec.lower
            info.lower = self.try_evaluate_constant(spec.lower)
        if spec.upper is None:
            info.upper = None
            info.upper_expr = None
        else:
            info.upper_expr = spec.upper
            info.upper = self.try_evaluate_constant(spec.upper)
        return info

    # ------------------------------------------------------------------
    # Constant expression evaluation
    # ------------------------------------------------------------------

    def try_evaluate_constant(self, expr: Expr) -> Optional[Union[int, float]]:
        try:
            return self.evaluate_constant(expr)
        except SemanticError:
            return None

    def evaluate_constant(self, expr: Expr) -> Union[int, float]:
        """Evaluate an expression built from literals and parameter names."""
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, RealLiteral):
            return expr.value
        if isinstance(expr, VarRef) and not expr.subscripts:
            symbol = self.symbols.get(expr.name)
            if symbol is not None and symbol.is_parameter:
                return symbol.parameter_value  # type: ignore[return-value]
            raise SemanticError(f"'{expr.name}' is not a constant")
        if isinstance(expr, UnaryOp):
            value = self.evaluate_constant(expr.operand)
            if expr.op == "-":
                return -value
            raise SemanticError(f"unsupported constant unary operator '{expr.op}'")
        if isinstance(expr, BinaryOp):
            lhs = self.evaluate_constant(expr.lhs)
            rhs = self.evaluate_constant(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                if isinstance(lhs, int) and isinstance(rhs, int):
                    return lhs // rhs
                return lhs / rhs
            if expr.op == "**":
                return lhs**rhs
            raise SemanticError(f"unsupported constant operator '{expr.op}'")
        if isinstance(expr, IntrinsicCall):
            args = [self.evaluate_constant(a) for a in expr.args]
            if expr.name == "max":
                return max(args)
            if expr.name == "min":
                return min(args)
            raise SemanticError(f"unsupported constant intrinsic '{expr.name}'")
        raise SemanticError("expression is not a compile-time constant")


__all__ = ["SymbolTable", "Symbol", "DimInfo", "SemanticError"]
