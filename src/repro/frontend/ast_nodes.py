"""Abstract syntax tree for the Fortran subset.

Nodes are plain dataclasses; the FIR code generator consumes them directly.
Source line numbers are retained for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class RealLiteral(Expr):
    value: float = 0.0
    kind: int = 8  # bytes; 8 => f64, 4 => f32


@dataclass
class LogicalLiteral(Expr):
    value: bool = False


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    """A scalar variable reference or an array element reference."""

    name: str = ""
    subscripts: List[Expr] = field(default_factory=list)

    @property
    def is_array_ref(self) -> bool:
        return bool(self.subscripts)


@dataclass
class BinaryOp(Expr):
    op: str = "+"  # one of + - * / ** and relational/logical operators
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class UnaryOp(Expr):
    op: str = "-"  # '-' or '.not.'
    operand: Expr = None


@dataclass
class IntrinsicCall(Expr):
    """A call to a recognised intrinsic (sqrt, abs, min, max, ...)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class DimSpec:
    """One array dimension: bounds default to 1:extent."""

    lower: Optional[Expr] = None  # None means the default lower bound of 1
    upper: Optional[Expr] = None  # None means assumed size / deferred

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lo = "1" if self.lower is None else "?"
        hi = "?" if self.upper is None else "?"
        return f"DimSpec({lo}:{hi})"


@dataclass
class EntityDecl:
    """One declared entity within a type declaration statement."""

    name: str = ""
    dims: List[DimSpec] = field(default_factory=list)
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Declaration:
    """A type declaration statement, e.g. ``real(kind=8), intent(inout) :: u(n, n)``."""

    base_type: str = "real"  # 'integer' | 'real' | 'logical' | 'double precision'
    kind: int = 4  # bytes
    attributes: List[str] = field(default_factory=list)  # parameter, allocatable, ...
    intent: Optional[str] = None
    entities: List[EntityDecl] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement:
    line: int = 0


@dataclass
class Assignment(Statement):
    target: VarRef = None
    value: Expr = None


@dataclass
class DoLoop(Statement):
    var: str = ""
    start: Expr = None
    stop: Expr = None
    step: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@dataclass
class DoWhile(Statement):
    condition: Expr = None
    body: List[Statement] = field(default_factory=list)


@dataclass
class IfBlock(Statement):
    """if/else-if/else construct; branches hold (condition, body) pairs and the
    final else body (possibly empty) is stored separately."""

    branches: List[Tuple[Expr, List[Statement]]] = field(default_factory=list)
    else_body: List[Statement] = field(default_factory=list)


@dataclass
class CallStmt(Statement):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class AllocateStmt(Statement):
    allocations: List[VarRef] = field(default_factory=list)


@dataclass
class DeallocateStmt(Statement):
    names: List[str] = field(default_factory=list)


@dataclass
class ReturnStmt(Statement):
    pass


@dataclass
class ExitStmt(Statement):
    pass


@dataclass
class CycleStmt(Statement):
    pass


@dataclass
class PrintStmt(Statement):
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Program units
# ---------------------------------------------------------------------------


@dataclass
class ProgramUnit:
    """A ``program``, ``subroutine`` or ``function`` unit."""

    kind: str = "subroutine"  # 'program' | 'subroutine' | 'function'
    name: str = ""
    args: List[str] = field(default_factory=list)
    declarations: List[Declaration] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)
    result_name: Optional[str] = None
    line: int = 0


@dataclass
class SourceFile:
    """A parsed source file: one or more program units."""

    units: List[ProgramUnit] = field(default_factory=list)

    def unit(self, name: str) -> ProgramUnit:
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(f"no program unit named '{name}'")


__all__ = [
    "Expr",
    "IntLiteral",
    "RealLiteral",
    "LogicalLiteral",
    "StringLiteral",
    "VarRef",
    "BinaryOp",
    "UnaryOp",
    "IntrinsicCall",
    "DimSpec",
    "EntityDecl",
    "Declaration",
    "Statement",
    "Assignment",
    "DoLoop",
    "DoWhile",
    "IfBlock",
    "CallStmt",
    "AllocateStmt",
    "DeallocateStmt",
    "ReturnStmt",
    "ExitStmt",
    "CycleStmt",
    "PrintStmt",
    "ProgramUnit",
    "SourceFile",
]
