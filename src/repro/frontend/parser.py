"""Recursive-descent parser for the Fortran subset.

Supports the constructs the paper's benchmarks rely on: program/subroutine
units, ``implicit none``, type declarations with kinds, ``parameter``,
``dimension``, ``intent`` and ``allocatable`` attributes, counted ``do`` loops
(with optional stride), ``do while``, block and single-line ``if``,
assignments over scalar and array references, arithmetic/relational/logical
expressions, intrinsic calls and ``call`` statements.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    AllocateStmt,
    Assignment,
    BinaryOp,
    CallStmt,
    CycleStmt,
    DeallocateStmt,
    Declaration,
    DimSpec,
    DoLoop,
    DoWhile,
    EntityDecl,
    ExitStmt,
    Expr,
    IfBlock,
    IntLiteral,
    IntrinsicCall,
    LogicalLiteral,
    PrintStmt,
    ProgramUnit,
    RealLiteral,
    ReturnStmt,
    SourceFile,
    Statement,
    StringLiteral,
    UnaryOp,
    VarRef,
)
from .lexer import Token, tokenize

#: Intrinsic procedures recognised by the frontend.
INTRINSICS = frozenset(
    {
        "sqrt",
        "abs",
        "exp",
        "log",
        "log10",
        "sin",
        "cos",
        "tan",
        "tanh",
        "min",
        "max",
        "mod",
        "dble",
        "real",
        "int",
        "float",
        "nint",
        "sign",
    }
)


class FortranSyntaxError(Exception):
    """Raised for source the parser cannot handle."""

    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} at line {token.line} (near '{token.value}')"
        super().__init__(message)


class FortranParser:
    """Parses a token stream into a :class:`SourceFile`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            expected = value or kind
            raise FortranSyntaxError(f"expected '{expected}'", self.peek())
        return self.advance()

    def skip_newlines(self) -> None:
        while self.check("NEWLINE"):
            self.advance()

    def expect_end_of_statement(self) -> None:
        if self.check("EOF"):
            return
        self.expect("NEWLINE")
        self.skip_newlines()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> SourceFile:
        units: List[ProgramUnit] = []
        self.skip_newlines()
        while not self.check("EOF"):
            units.append(self.parse_unit())
            self.skip_newlines()
        return SourceFile(units)

    # ------------------------------------------------------------------
    # Program units
    # ------------------------------------------------------------------

    def parse_unit(self) -> ProgramUnit:
        token = self.peek()
        if self.accept("KEYWORD", "program"):
            name = self.expect("IDENT").value
            self.expect_end_of_statement()
            unit = ProgramUnit(kind="program", name=name, line=token.line)
        elif self.accept("KEYWORD", "subroutine"):
            name = self.expect("IDENT").value
            args = self._parse_dummy_args()
            self.expect_end_of_statement()
            unit = ProgramUnit(kind="subroutine", name=name, args=args, line=token.line)
        elif self.accept("KEYWORD", "function"):
            name = self.expect("IDENT").value
            args = self._parse_dummy_args()
            result_name = name
            if self.accept("KEYWORD", "result"):
                self.expect("LPAREN")
                result_name = self.expect("IDENT").value
                self.expect("RPAREN")
            self.expect_end_of_statement()
            unit = ProgramUnit(
                kind="function", name=name, args=args, result_name=result_name,
                line=token.line,
            )
        else:
            raise FortranSyntaxError(
                "expected 'program', 'subroutine' or 'function'", token
            )

        # Specification part
        while True:
            self.skip_newlines()
            if self.check("KEYWORD", "implicit"):
                self.advance()
                self.expect("KEYWORD", "none")
                self.expect_end_of_statement()
                continue
            if self.check("KEYWORD", "use"):
                # Module uses are accepted and ignored (no module system needed).
                while not self.check("NEWLINE") and not self.check("EOF"):
                    self.advance()
                self.expect_end_of_statement()
                continue
            if self._at_declaration():
                unit.declarations.append(self.parse_declaration())
                continue
            break

        # Execution part
        unit.body = self.parse_statement_block(("end",))
        self._consume_end(unit.kind, unit.name)
        return unit

    def _parse_dummy_args(self) -> List[str]:
        args: List[str] = []
        if self.accept("LPAREN"):
            if not self.check("RPAREN"):
                args.append(self.expect("IDENT").value)
                while self.accept("COMMA"):
                    args.append(self.expect("IDENT").value)
            self.expect("RPAREN")
        return args

    def _consume_end(self, kind: str, name: str) -> None:
        self.expect("KEYWORD", "end")
        self.accept("KEYWORD", kind)
        self.accept("IDENT", name)
        if not self.check("EOF"):
            self.expect_end_of_statement()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    _TYPE_KEYWORDS = ("integer", "real", "double", "logical")

    def _at_declaration(self) -> bool:
        return self.check("KEYWORD") and self.peek().value in self._TYPE_KEYWORDS

    def parse_declaration(self) -> Declaration:
        token = self.peek()
        decl = Declaration(line=token.line)
        base = self.expect("KEYWORD").value
        if base == "double":
            self.expect("KEYWORD", "precision")
            decl.base_type = "real"
            decl.kind = 8
        else:
            decl.base_type = base
            decl.kind = 4
            if base == "real":
                decl.kind = 4
            # kind selectors: real(kind=8), real(8), real*8, integer(4)...
            if self.accept("STAR"):
                decl.kind = int(self.expect("INT").value)
            elif self.check("LPAREN"):
                self.advance()
                if self.accept("KEYWORD", "kind"):
                    self.expect("ASSIGN")
                kind_token = self.expect("INT")
                decl.kind = int(kind_token.value)
                self.expect("RPAREN")

        # Attribute list
        while self.accept("COMMA"):
            if self.accept("KEYWORD", "parameter"):
                decl.attributes.append("parameter")
            elif self.accept("KEYWORD", "allocatable"):
                decl.attributes.append("allocatable")
            elif self.accept("KEYWORD", "intent"):
                self.expect("LPAREN")
                intent_token = self.advance()
                intent = intent_token.value
                if intent == "in" and self.accept("KEYWORD", "out"):
                    intent = "inout"
                decl.intent = intent
                self.expect("RPAREN")
            elif self.accept("KEYWORD", "dimension"):
                self.expect("LPAREN")
                dims = self._parse_dim_list()
                self.expect("RPAREN")
                decl.attributes.append("dimension")
                decl.default_dims = dims  # type: ignore[attr-defined]
            else:
                raise FortranSyntaxError("unsupported declaration attribute", self.peek())

        self.expect("DCOLON")

        while True:
            entity = EntityDecl(line=self.peek().line)
            entity.name = self.expect("IDENT").value
            if self.accept("LPAREN"):
                entity.dims = self._parse_dim_list()
                self.expect("RPAREN")
            elif getattr(decl, "default_dims", None):
                entity.dims = list(decl.default_dims)  # type: ignore[attr-defined]
            if self.accept("ASSIGN"):
                entity.init = self.parse_expression()
            decl.entities.append(entity)
            if not self.accept("COMMA"):
                break
        self.expect_end_of_statement()
        return decl

    def _parse_dim_list(self) -> List[DimSpec]:
        dims = [self._parse_dim_spec()]
        while self.accept("COMMA"):
            dims.append(self._parse_dim_spec())
        return dims

    def _parse_dim_spec(self) -> DimSpec:
        if self.accept("COLON"):
            return DimSpec(lower=None, upper=None)  # deferred shape
        first = self.parse_expression()
        if self.accept("COLON"):
            if self.check("COMMA") or self.check("RPAREN"):
                return DimSpec(lower=first, upper=None)
            upper = self.parse_expression()
            return DimSpec(lower=first, upper=upper)
        return DimSpec(lower=None, upper=first)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement_block(self, stop_keywords: Tuple[str, ...]) -> List[Statement]:
        """Parse statements until one of ``stop_keywords`` begins a line."""
        body: List[Statement] = []
        while True:
            self.skip_newlines()
            if self.check("EOF"):
                break
            if self.check("KEYWORD") and self.peek().value in stop_keywords:
                break
            body.append(self.parse_statement())
        return body

    def parse_statement(self) -> Statement:
        token = self.peek()
        if self.check("KEYWORD", "do"):
            return self.parse_do()
        if self.check("KEYWORD", "if"):
            return self.parse_if()
        if self.accept("KEYWORD", "call"):
            name = self.expect("IDENT").value
            args: List[Expr] = []
            if self.accept("LPAREN"):
                if not self.check("RPAREN"):
                    args.append(self.parse_expression())
                    while self.accept("COMMA"):
                        args.append(self.parse_expression())
                self.expect("RPAREN")
            self.expect_end_of_statement()
            return CallStmt(name=name, args=args, line=token.line)
        if self.accept("KEYWORD", "return"):
            self.expect_end_of_statement()
            return ReturnStmt(line=token.line)
        if self.accept("KEYWORD", "exit"):
            self.expect_end_of_statement()
            return ExitStmt(line=token.line)
        if self.accept("KEYWORD", "cycle"):
            self.expect_end_of_statement()
            return CycleStmt(line=token.line)
        if self.accept("KEYWORD", "stop"):
            while not self.check("NEWLINE") and not self.check("EOF"):
                self.advance()
            self.expect_end_of_statement()
            return ReturnStmt(line=token.line)
        if self.accept("KEYWORD", "allocate"):
            self.expect("LPAREN")
            allocs = [self._parse_var_ref()]
            while self.accept("COMMA"):
                allocs.append(self._parse_var_ref())
            self.expect("RPAREN")
            self.expect_end_of_statement()
            return AllocateStmt(allocations=allocs, line=token.line)
        if self.accept("KEYWORD", "deallocate"):
            self.expect("LPAREN")
            names = [self.expect("IDENT").value]
            while self.accept("COMMA"):
                names.append(self.expect("IDENT").value)
            self.expect("RPAREN")
            self.expect_end_of_statement()
            return DeallocateStmt(names=names, line=token.line)
        if self.accept("KEYWORD", "print") or self.accept("KEYWORD", "write"):
            # Consume the rest of the line; output statements have no effect on
            # the numerical kernels this frontend targets.
            args: List[Expr] = []
            while not self.check("NEWLINE") and not self.check("EOF"):
                self.advance()
            self.expect_end_of_statement()
            return PrintStmt(args=args, line=token.line)
        # Fallback: assignment
        return self.parse_assignment()

    def parse_assignment(self) -> Assignment:
        token = self.peek()
        target = self._parse_var_ref()
        self.expect("ASSIGN")
        value = self.parse_expression()
        self.expect_end_of_statement()
        return Assignment(target=target, value=value, line=token.line)

    def parse_do(self) -> Statement:
        token = self.expect("KEYWORD", "do")
        if self.accept("KEYWORD", "while"):
            self.expect("LPAREN")
            condition = self.parse_expression()
            self.expect("RPAREN")
            self.expect_end_of_statement()
            body = self.parse_statement_block(("end", "enddo"))
            self._consume_block_end("do")
            return DoWhile(condition=condition, body=body, line=token.line)
        var = self.expect("IDENT").value
        self.expect("ASSIGN")
        start = self.parse_expression()
        self.expect("COMMA")
        stop = self.parse_expression()
        step: Optional[Expr] = None
        if self.accept("COMMA"):
            step = self.parse_expression()
        self.expect_end_of_statement()
        body = self.parse_statement_block(("end", "enddo"))
        self._consume_block_end("do")
        return DoLoop(var=var, start=start, stop=stop, step=step, body=body, line=token.line)

    def _consume_block_end(self, kind: str) -> None:
        if self.accept("KEYWORD", "enddo"):
            self.expect_end_of_statement()
            return
        if self.accept("KEYWORD", "endif"):
            self.expect_end_of_statement()
            return
        self.expect("KEYWORD", "end")
        self.accept("KEYWORD", kind)
        self.expect_end_of_statement()

    def parse_if(self) -> Statement:
        token = self.expect("KEYWORD", "if")
        self.expect("LPAREN")
        condition = self.parse_expression()
        self.expect("RPAREN")
        if not self.check("KEYWORD", "then"):
            # single statement if
            stmt = self.parse_statement()
            block = IfBlock(line=token.line)
            block.branches.append((condition, [stmt]))
            return block
        self.expect("KEYWORD", "then")
        self.expect_end_of_statement()
        block = IfBlock(line=token.line)
        body = self.parse_statement_block(("end", "endif", "else", "elseif"))
        block.branches.append((condition, body))
        while True:
            if self.accept("KEYWORD", "elseif") or (
                self.check("KEYWORD", "else") and self.check("KEYWORD", "if", offset=1)
            ):
                if self.peek().value == "else":
                    self.advance()
                    self.advance()
                self.expect("LPAREN")
                cond = self.parse_expression()
                self.expect("RPAREN")
                self.expect("KEYWORD", "then")
                self.expect_end_of_statement()
                body = self.parse_statement_block(("end", "endif", "else", "elseif"))
                block.branches.append((cond, body))
                continue
            if self.accept("KEYWORD", "else"):
                self.expect_end_of_statement()
                block.else_body = self.parse_statement_block(("end", "endif"))
            break
        self._consume_block_end("if")
        return block

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self.check("DOTOP", ".or."):
            line = self.advance().line
            rhs = self._parse_and()
            expr = BinaryOp(op=".or.", lhs=expr, rhs=rhs, line=line)
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_not()
        while self.check("DOTOP", ".and."):
            line = self.advance().line
            rhs = self._parse_not()
            expr = BinaryOp(op=".and.", lhs=expr, rhs=rhs, line=line)
        return expr

    def _parse_not(self) -> Expr:
        if self.check("DOTOP", ".not."):
            line = self.advance().line
            return UnaryOp(op=".not.", operand=self._parse_not(), line=line)
        return self._parse_comparison()

    _REL_TOKENS = {
        "LT": "<",
        "LE": "<=",
        "GT": ">",
        "GE": ">=",
        "EQ": "==",
        "NE": "/=",
    }
    _REL_DOTOPS = {
        ".lt.": "<",
        ".le.": "<=",
        ".gt.": ">",
        ".ge.": ">=",
        ".eq.": "==",
        ".ne.": "/=",
    }

    def _parse_comparison(self) -> Expr:
        expr = self._parse_additive()
        token = self.peek()
        op: Optional[str] = None
        if token.kind in self._REL_TOKENS:
            op = self._REL_TOKENS[token.kind]
        elif token.kind == "DOTOP" and token.value in self._REL_DOTOPS:
            op = self._REL_DOTOPS[token.value]
        if op is not None:
            line = self.advance().line
            rhs = self._parse_additive()
            return BinaryOp(op=op, lhs=expr, rhs=rhs, line=line)
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self.check("PLUS") or self.check("MINUS"):
            token = self.advance()
            rhs = self._parse_multiplicative()
            op = "+" if token.kind == "PLUS" else "-"
            expr = BinaryOp(op=op, lhs=expr, rhs=rhs, line=token.line)
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self.check("STAR") or self.check("SLASH"):
            token = self.advance()
            rhs = self._parse_unary()
            op = "*" if token.kind == "STAR" else "/"
            expr = BinaryOp(op=op, lhs=expr, rhs=rhs, line=token.line)
        return expr

    def _parse_unary(self) -> Expr:
        if self.check("MINUS"):
            token = self.advance()
            return UnaryOp(op="-", operand=self._parse_unary(), line=token.line)
        if self.check("PLUS"):
            self.advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_primary()
        if self.check("POW"):
            token = self.advance()
            # ** is right associative
            exponent = self._parse_unary()
            return BinaryOp(op="**", lhs=base, rhs=exponent, line=token.line)
        return base

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if self.accept("LPAREN"):
            expr = self.parse_expression()
            self.expect("RPAREN")
            return expr
        if token.kind == "INT":
            self.advance()
            return IntLiteral(value=int(token.value.split("_")[0]), line=token.line)
        if token.kind == "REAL":
            self.advance()
            text = token.value.split("_")[0]
            kind = 8 if ("d" in text.lower()) else 8  # default reals to f64 precision
            normalised = text.lower().replace("d", "e")
            return RealLiteral(value=float(normalised), kind=kind, line=token.line)
        if token.kind == "DOTOP" and token.value in (".true.", ".false."):
            self.advance()
            return LogicalLiteral(value=token.value == ".true.", line=token.line)
        if token.kind == "STRING":
            self.advance()
            return StringLiteral(value=token.value[1:-1], line=token.line)
        if token.kind == "IDENT" or token.kind == "KEYWORD":
            # Keywords like 'real' can appear as intrinsic conversions: real(x)
            name = self.advance().value
            if self.check("LPAREN"):
                self.advance()
                args: List[Expr] = []
                if not self.check("RPAREN"):
                    args.append(self.parse_expression())
                    while self.accept("COMMA"):
                        args.append(self.parse_expression())
                self.expect("RPAREN")
                if name in INTRINSICS:
                    return IntrinsicCall(name=name, args=args, line=token.line)
                return VarRef(name=name, subscripts=args, line=token.line)
            return VarRef(name=name, line=token.line)
        raise FortranSyntaxError("unexpected token in expression", token)

    def _parse_var_ref(self) -> VarRef:
        token = self.expect("IDENT")
        ref = VarRef(name=token.value, line=token.line)
        if self.accept("LPAREN"):
            if not self.check("RPAREN"):
                ref.subscripts.append(self.parse_expression())
                while self.accept("COMMA"):
                    ref.subscripts.append(self.parse_expression())
            self.expect("RPAREN")
        return ref


def parse_source(source: str) -> SourceFile:
    """Parse Fortran source text into an AST."""
    return FortranParser(source).parse()


__all__ = ["FortranParser", "FortranSyntaxError", "parse_source", "INTRINSICS"]
