"""FIR code generation from the Fortran AST.

The generator mimics the idioms Flang produces when lowering to FIR, because
the stencil discovery pass (the paper's core contribution) pattern-matches
those idioms:

* every variable — including DO loop variables — lives in a ``fir.alloca``
  (or dummy-argument reference) and is bound to its source name with
  ``fir.declare``;
* counted loops become ``fir.do_loop`` whose index is converted and stored
  into the loop variable's memory slot at the top of the body;
* array element accesses are ``fir.coordinate_of`` + ``fir.load`` /
  ``fir.store`` with zero-based index expressions built from ``fir.load`` of
  the driving variables, ``fir.convert`` casts and ``arith`` offset maths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dialects import arith, fir, func, math_dialect as math
from ..dialects.builtin import ModuleOp
from ..ir.builder import Builder
from ..ir.operation import Block, Operation, Region
from ..ir.ssa import SSAValue
from ..ir.types import (
    DYNAMIC,
    FloatType,
    IntegerType,
    TypeAttribute,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)
from .ast_nodes import (
    AllocateStmt,
    Assignment,
    BinaryOp,
    CallStmt,
    CycleStmt,
    DeallocateStmt,
    DoLoop,
    DoWhile,
    ExitStmt,
    Expr,
    IfBlock,
    IntLiteral,
    IntrinsicCall,
    LogicalLiteral,
    PrintStmt,
    ProgramUnit,
    RealLiteral,
    ReturnStmt,
    SourceFile,
    Statement,
    UnaryOp,
    VarRef,
)
from .symbols import SemanticError, Symbol, SymbolTable


class CodegenError(Exception):
    """Raised when the generator meets a construct it cannot lower."""


def _scalar_type(symbol: Symbol) -> TypeAttribute:
    if symbol.base_type == "integer":
        return i64 if symbol.kind == 8 else i32
    if symbol.base_type == "real":
        return f64 if symbol.kind == 8 else f32
    if symbol.base_type == "logical":
        return i1
    raise CodegenError(f"unsupported base type '{symbol.base_type}'")


def _array_type(symbol: Symbol) -> fir.SequenceType:
    shape = []
    for dim in symbol.dims:
        shape.append(dim.extent if dim.extent is not None else DYNAMIC)
    return fir.SequenceType(shape, _scalar_type(symbol))


class _FunctionCodegen:
    """Generates one ``func.func`` containing FIR for one program unit."""

    def __init__(self, unit: ProgramUnit, module_units: Dict[str, ProgramUnit]):
        self.unit = unit
        self.symtab = SymbolTable(unit)
        self.module_units = module_units
        #: name -> reference-like SSA value addressing the variable's storage
        self.storage: Dict[str, SSAValue] = {}
        self.builder = Builder()
        self.func_op: Optional[func.FuncOp] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def generate(self) -> func.FuncOp:
        arg_types = [self._dummy_type(self.symtab[a]) for a in self.unit.args]
        self.func_op = func.FuncOp.build(self.unit.name, arg_types, [])
        entry = self.func_op.entry_block
        self.builder.set_insertion_point_to_end(entry)

        # Bind dummy arguments.
        for arg_value, arg_name in zip(entry.args, self.unit.args):
            arg_value.name_hint = arg_name
            declare = self.builder.insert(
                fir.DeclareOp(arg_value, self._uniq_name(arg_name))
            )
            self.storage[arg_name] = declare.results[0]

        # Allocate local (non-dummy, non-parameter) variables.
        for symbol in self.symtab.values():
            if symbol.is_dummy or symbol.is_parameter:
                continue
            if symbol.is_allocatable:
                continue  # storage is created by the allocate statement
            self._allocate_local(symbol)

        for stmt in self.unit.body:
            self.gen_statement(stmt)

        self.builder.insert(func.ReturnOp([]))
        return self.func_op

    def _uniq_name(self, name: str) -> str:
        return f"_QF{self.unit.name}E{name}"

    def _dummy_type(self, symbol: Symbol) -> TypeAttribute:
        if symbol.is_array:
            return fir.ReferenceType(_array_type(symbol))
        return fir.ReferenceType(_scalar_type(symbol))

    def _allocate_local(self, symbol: Symbol) -> None:
        if symbol.is_array:
            in_type: TypeAttribute = _array_type(symbol)
            extent_values: List[SSAValue] = []
            for dim in symbol.dims:
                if dim.extent is None:
                    if dim.upper_expr is None:
                        raise CodegenError(
                            f"array '{symbol.name}' has a deferred shape but is not "
                            "allocatable"
                        )
                    upper, _ = self.gen_expression(dim.upper_expr)
                    extent_values.append(self._to_index(upper))
            alloca = self.builder.insert(
                fir.AllocaOp(in_type, uniq_name=self._uniq_name(symbol.name),
                             bindc_name=symbol.name, dynamic_extents=extent_values)
            )
        else:
            alloca = self.builder.insert(
                fir.AllocaOp(_scalar_type(symbol), uniq_name=self._uniq_name(symbol.name),
                             bindc_name=symbol.name)
            )
        declare = self.builder.insert(
            fir.DeclareOp(alloca.results[0], self._uniq_name(symbol.name))
        )
        self.storage[symbol.name] = declare.results[0]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def gen_statement(self, stmt: Statement) -> None:
        if isinstance(stmt, Assignment):
            self.gen_assignment(stmt)
        elif isinstance(stmt, DoLoop):
            self.gen_do_loop(stmt)
        elif isinstance(stmt, IfBlock):
            self.gen_if(stmt)
        elif isinstance(stmt, CallStmt):
            self.gen_call(stmt)
        elif isinstance(stmt, AllocateStmt):
            self.gen_allocate(stmt)
        elif isinstance(stmt, DeallocateStmt):
            self.gen_deallocate(stmt)
        elif isinstance(stmt, (PrintStmt, ReturnStmt)):
            # Output has no effect on the kernels; RETURN at the end of a unit
            # coincides with the implicit return the generator always emits.
            return
        elif isinstance(stmt, DoWhile):
            raise CodegenError("do while loops are not supported by the FIR generator")
        elif isinstance(stmt, (ExitStmt, CycleStmt)):
            raise CodegenError("exit/cycle are not supported by the FIR generator")
        else:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}")

    def gen_assignment(self, stmt: Assignment) -> None:
        symbol = self.symtab[stmt.target.name]
        value, value_kind = self.gen_expression(stmt.value)
        target_type = _scalar_type(symbol)
        value = self._convert_to(value, target_type)
        if stmt.target.is_array_ref:
            address = self._element_address(stmt.target, symbol)
            self.builder.insert(fir.StoreOp(value, address))
        else:
            if symbol.is_parameter:
                raise CodegenError(f"cannot assign to parameter '{symbol.name}'")
            self.builder.insert(fir.StoreOp(value, self.storage[symbol.name]))

    def gen_do_loop(self, stmt: DoLoop) -> None:
        var_symbol = self.symtab[stmt.var]
        if var_symbol.base_type != "integer":
            raise CodegenError("DO loop variables must be integers")
        start, _ = self.gen_expression(stmt.start)
        stop, _ = self.gen_expression(stmt.stop)
        lower = self._to_index(start)
        upper = self._to_index(stop)
        if stmt.step is not None:
            step_value, _ = self.gen_expression(stmt.step)
            step = self._to_index(step_value)
        else:
            step = self.builder.insert(arith.ConstantOp.from_int(1, index)).results[0]

        loop = self.builder.insert(fir.DoLoopOp(lower, upper, step))
        with self.builder.guarded():
            self.builder.set_insertion_point_to_end(loop.body.block)
            induction = loop.induction_variable
            induction.name_hint = stmt.var
            as_int = self.builder.insert(
                fir.ConvertOp(induction, _scalar_type(var_symbol))
            )
            self.builder.insert(
                fir.StoreOp(as_int.results[0], self.storage[stmt.var])
            )
            for inner in stmt.body:
                self.gen_statement(inner)
            self.builder.insert(fir.ResultOp([]))

    def gen_if(self, stmt: IfBlock) -> None:
        self._gen_if_branches(stmt.branches, stmt.else_body)

    def _gen_if_branches(self, branches, else_body) -> None:
        condition_expr, body = branches[0]
        condition, _ = self.gen_expression(condition_expr)
        if_op = self.builder.insert(fir.IfOp(condition, Region([Block()]), Region([Block()])))
        with self.builder.guarded():
            self.builder.set_insertion_point_to_end(if_op.regions[0].block)
            for inner in body:
                self.gen_statement(inner)
            self.builder.insert(fir.ResultOp([]))
        with self.builder.guarded():
            self.builder.set_insertion_point_to_end(if_op.regions[1].block)
            if len(branches) > 1:
                self._gen_if_branches(branches[1:], else_body)
            else:
                for inner in else_body:
                    self.gen_statement(inner)
            self.builder.insert(fir.ResultOp([]))

    def gen_call(self, stmt: CallStmt) -> None:
        arguments: List[SSAValue] = []
        for arg in stmt.args:
            if isinstance(arg, VarRef) and not arg.subscripts and arg.name in self.storage:
                arguments.append(self.storage[arg.name])
                continue
            # Pass expressions by reference through a compiler temporary.
            value, _ = self.gen_expression(arg)
            temp = self.builder.insert(
                fir.AllocaOp(value.type, uniq_name=f"{self._uniq_name('tmp')}.{len(arguments)}")
            )
            self.builder.insert(fir.StoreOp(value, temp.results[0]))
            arguments.append(temp.results[0])
        self.builder.insert(fir.CallOp(stmt.name, arguments))

    def gen_allocate(self, stmt: AllocateStmt) -> None:
        for ref in stmt.allocations:
            symbol = self.symtab[ref.name]
            if not symbol.is_allocatable:
                raise CodegenError(f"'{ref.name}' is not allocatable")
            elem = _scalar_type(symbol)
            extents: List[SSAValue] = []
            shape: List[int] = []
            for sub in ref.subscripts:
                const = self.symtab.try_evaluate_constant(sub)
                if const is not None:
                    shape.append(int(const))
                else:
                    shape.append(DYNAMIC)
                    value, _ = self.gen_expression(sub)
                    extents.append(self._to_index(value))
            array_type = fir.SequenceType(shape, elem)
            alloc = self.builder.insert(
                fir.AllocMemOp(array_type, uniq_name=self._uniq_name(ref.name),
                               dynamic_extents=extents)
            )
            declare = self.builder.insert(
                fir.DeclareOp(alloc.results[0], self._uniq_name(ref.name))
            )
            self.storage[ref.name] = declare.results[0]
            # Record the run-time shape for addressing.
            symbol.dims = symbol.dims or []

    def gen_deallocate(self, stmt: DeallocateStmt) -> None:
        for name in stmt.names:
            storage = self.storage.get(name)
            if storage is None:
                raise CodegenError(f"deallocate of unallocated variable '{name}'")
            self.builder.insert(fir.FreeMemOp(storage))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def gen_expression(self, expr: Expr) -> Tuple[SSAValue, TypeAttribute]:
        if isinstance(expr, IntLiteral):
            op = self.builder.insert(arith.ConstantOp.from_int(expr.value, i32))
            return op.results[0], i32
        if isinstance(expr, RealLiteral):
            op = self.builder.insert(arith.ConstantOp.from_float(expr.value, f64))
            return op.results[0], f64
        if isinstance(expr, LogicalLiteral):
            op = self.builder.insert(arith.ConstantOp.from_int(int(expr.value), i1))
            return op.results[0], i1
        if isinstance(expr, VarRef):
            return self.gen_var_ref(expr)
        if isinstance(expr, UnaryOp):
            return self.gen_unary(expr)
        if isinstance(expr, BinaryOp):
            return self.gen_binary(expr)
        if isinstance(expr, IntrinsicCall):
            return self.gen_intrinsic(expr)
        raise CodegenError(f"unsupported expression {type(expr).__name__}")

    def gen_var_ref(self, expr: VarRef) -> Tuple[SSAValue, TypeAttribute]:
        symbol = self.symtab[expr.name]
        if symbol.is_parameter:
            value = symbol.parameter_value
            if symbol.base_type == "integer":
                op = self.builder.insert(arith.ConstantOp.from_int(int(value), i32))
                return op.results[0], i32
            op = self.builder.insert(arith.ConstantOp.from_float(float(value), f64))
            return op.results[0], f64
        if expr.is_array_ref:
            address = self._element_address(expr, symbol)
            load = self.builder.insert(fir.LoadOp(address))
            return load.results[0], load.results[0].type
        load = self.builder.insert(fir.LoadOp(self.storage[expr.name]))
        return load.results[0], load.results[0].type

    def gen_unary(self, expr: UnaryOp) -> Tuple[SSAValue, TypeAttribute]:
        value, value_type = self.gen_expression(expr.operand)
        if expr.op == "-":
            if isinstance(value_type, FloatType):
                op = self.builder.insert(arith.NegfOp(value))
                return op.results[0], value_type
            zero = self.builder.insert(arith.ConstantOp.from_int(0, value_type))
            op = self.builder.insert(arith.SubiOp(zero.results[0], value))
            return op.results[0], value_type
        if expr.op == ".not.":
            one = self.builder.insert(arith.ConstantOp.from_int(1, i1))
            op = self.builder.insert(arith.XOrIOp(value, one.results[0]))
            return op.results[0], i1
        raise CodegenError(f"unsupported unary operator '{expr.op}'")

    _FLOAT_BINOPS = {"+": arith.AddfOp, "-": arith.SubfOp, "*": arith.MulfOp, "/": arith.DivfOp}
    _INT_BINOPS = {"+": arith.AddiOp, "-": arith.SubiOp, "*": arith.MuliOp, "/": arith.DivSIOp}
    _FLOAT_CMP = {"==": "oeq", "/=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}
    _INT_CMP = {"==": "eq", "/=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}

    def gen_binary(self, expr: BinaryOp) -> Tuple[SSAValue, TypeAttribute]:
        if expr.op in (".and.", ".or."):
            lhs, _ = self.gen_expression(expr.lhs)
            rhs, _ = self.gen_expression(expr.rhs)
            cls = arith.AndIOp if expr.op == ".and." else arith.OrIOp
            op = self.builder.insert(cls(lhs, rhs))
            return op.results[0], i1

        lhs, lhs_type = self.gen_expression(expr.lhs)
        rhs, rhs_type = self.gen_expression(expr.rhs)

        if expr.op == "**":
            return self.gen_power(lhs, lhs_type, rhs, rhs_type, expr)

        lhs, rhs, common = self._usual_conversions(lhs, lhs_type, rhs, rhs_type)

        if expr.op in ("==", "/=", "<", "<=", ">", ">="):
            if isinstance(common, FloatType):
                op = self.builder.insert(arith.CmpfOp(self._FLOAT_CMP[expr.op], lhs, rhs))
            else:
                op = self.builder.insert(arith.CmpiOp(self._INT_CMP[expr.op], lhs, rhs))
            return op.results[0], i1

        table = self._FLOAT_BINOPS if isinstance(common, FloatType) else self._INT_BINOPS
        if expr.op not in table:
            raise CodegenError(f"unsupported binary operator '{expr.op}'")
        op = self.builder.insert(table[expr.op](lhs, rhs))
        return op.results[0], common

    def gen_power(self, lhs, lhs_type, rhs, rhs_type, expr) -> Tuple[SSAValue, TypeAttribute]:
        # x ** <small positive int literal> unrolls to repeated multiplication,
        # matching what Flang's arith lowering does for constant exponents.
        if isinstance(expr.rhs, IntLiteral) and 1 <= expr.rhs.value <= 4:
            base, base_type = lhs, lhs_type
            if not isinstance(base_type, FloatType):
                base = self._convert_to(base, f64)
                base_type = f64
            result = base
            for _ in range(expr.rhs.value - 1):
                result = self.builder.insert(arith.MulfOp(result, base)).results[0]
            return result, base_type
        base = self._convert_to(lhs, f64)
        exponent = self._convert_to(rhs, f64)
        op = self.builder.insert(math.PowFOp(base, exponent))
        return op.results[0], f64

    _UNARY_MATH = {
        "sqrt": math.SqrtOp,
        "abs": math.AbsFOp,
        "exp": math.ExpOp,
        "log": math.LogOp,
        "log10": math.Log10Op,
        "sin": math.SinOp,
        "cos": math.CosOp,
        "tan": math.TanOp,
        "tanh": math.TanhOp,
    }

    def gen_intrinsic(self, expr: IntrinsicCall) -> Tuple[SSAValue, TypeAttribute]:
        name = expr.name
        if name in self._UNARY_MATH:
            value, value_type = self.gen_expression(expr.args[0])
            value = self._convert_to(value, f64)
            op = self.builder.insert(self._UNARY_MATH[name](value))
            return op.results[0], f64
        if name in ("min", "max"):
            values = [self.gen_expression(a) for a in expr.args]
            any_float = any(isinstance(t, FloatType) for _, t in values)
            result, result_type = values[0]
            if any_float:
                result = self._convert_to(result, f64)
                result_type = f64
            for value, value_type in values[1:]:
                if any_float:
                    value = self._convert_to(value, f64)
                    cls = arith.MinimumfOp if name == "min" else arith.MaximumfOp
                else:
                    cls = arith.MinSIOp if name == "min" else arith.MaxSIOp
                result = self.builder.insert(cls(result, value)).results[0]
            return result, result_type
        if name == "mod":
            lhs, lhs_type = self.gen_expression(expr.args[0])
            rhs, rhs_type = self.gen_expression(expr.args[1])
            lhs, rhs, common = self._usual_conversions(lhs, lhs_type, rhs, rhs_type)
            if isinstance(common, FloatType):
                raise CodegenError("mod() on reals is not supported")
            op = self.builder.insert(arith.RemSIOp(lhs, rhs))
            return op.results[0], common
        if name in ("dble", "real", "float"):
            value, _ = self.gen_expression(expr.args[0])
            return self._convert_to(value, f64), f64
        if name in ("int", "nint"):
            value, _ = self.gen_expression(expr.args[0])
            return self._convert_to(value, i32), i32
        if name == "sign":
            magnitude, _ = self.gen_expression(expr.args[0])
            sign_source, _ = self.gen_expression(expr.args[1])
            magnitude = self._convert_to(magnitude, f64)
            sign_source = self._convert_to(sign_source, f64)
            zero = self.builder.insert(arith.ConstantOp.from_float(0.0, f64)).results[0]
            absval = self.builder.insert(math.AbsFOp(magnitude)).results[0]
            neg = self.builder.insert(arith.NegfOp(absval)).results[0]
            is_neg = self.builder.insert(arith.CmpfOp("olt", sign_source, zero)).results[0]
            op = self.builder.insert(arith.SelectOp(is_neg, neg, absval))
            return op.results[0], f64
        raise CodegenError(f"unsupported intrinsic '{name}'")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _usual_conversions(
        self, lhs: SSAValue, lhs_type: TypeAttribute, rhs: SSAValue, rhs_type: TypeAttribute
    ) -> Tuple[SSAValue, SSAValue, TypeAttribute]:
        """Fortran's mixed-mode arithmetic: promote integers to reals, and
        everything to the widest kind present."""
        lhs_float = isinstance(lhs_type, FloatType)
        rhs_float = isinstance(rhs_type, FloatType)
        if lhs_float or rhs_float:
            width = max(
                lhs_type.width if lhs_float else 0, rhs_type.width if rhs_float else 0
            )
            target = f64 if width >= 64 else f32
            return self._convert_to(lhs, target), self._convert_to(rhs, target), target
        # both integers: use the wider
        lhs_width = lhs_type.width if isinstance(lhs_type, IntegerType) else 64
        rhs_width = rhs_type.width if isinstance(rhs_type, IntegerType) else 64
        target = i64 if max(lhs_width, rhs_width) > 32 else i32
        return self._convert_to(lhs, target), self._convert_to(rhs, target), target

    def _convert_to(self, value: SSAValue, target: TypeAttribute) -> SSAValue:
        if value.type == target:
            return value
        op = self.builder.insert(fir.ConvertOp(value, target))
        return op.results[0]

    def _to_index(self, value: SSAValue) -> SSAValue:
        return self._convert_to(value, index)

    def _element_address(self, ref: VarRef, symbol: Symbol) -> SSAValue:
        """Zero-based ``fir.coordinate_of`` addressing of ``ref``."""
        if not symbol.is_array:
            raise CodegenError(f"'{ref.name}' is not an array")
        if len(ref.subscripts) != symbol.rank:
            raise CodegenError(
                f"'{ref.name}' has rank {symbol.rank} but {len(ref.subscripts)} "
                "subscripts were given"
            )
        indices: List[SSAValue] = []
        for sub, dim in zip(ref.subscripts, symbol.dims):
            value, _ = self.gen_expression(sub)
            as_index = self._to_index(value)
            lower = dim.lower if dim.lower is not None else 1
            if lower != 0:
                bound = self.builder.insert(
                    arith.ConstantOp.from_int(lower, index)
                ).results[0]
                as_index = self.builder.insert(arith.SubiOp(as_index, bound)).results[0]
            indices.append(as_index)
        storage = self.storage[ref.name]
        coord = self.builder.insert(fir.CoordinateOfOp(storage, indices))
        return coord.results[0]


def generate_fir(source_file: SourceFile) -> ModuleOp:
    """Generate a FIR module from a parsed source file (all program units)."""
    units = {unit.name: unit for unit in source_file.units}
    functions = []
    for unit in source_file.units:
        functions.append(_FunctionCodegen(unit, units).generate())
    module = ModuleOp(functions)
    module.verify()
    return module


__all__ = ["generate_fir", "CodegenError", "_scalar_type", "_array_type"]
