"""The compile/run front door: many clients, one compile per artifact.

:class:`CompileService` turns a :class:`repro.api.Session` (optionally backed
by an :class:`ArtifactStore`) into a bounded concurrent service:

* **Single-flight coalescing.**  Duplicate in-flight compiles of the same
  ``(source fingerprint, backend, frozen options)`` key collapse onto one
  *flight*: the first arrival claims the flight and performs the lower, every
  other request blocks on the winner's future and shares its outcome — result
  or exception, so a quarantined compile poisons the whole cohort exactly
  once instead of retry-storming the backend.
* **Backpressure.**  Admission is a bounded queue; when it is full,
  :meth:`submit_compile`/:meth:`submit_run` raise a typed
  :class:`ServiceRejected` immediately (and resolve any already-coalesced
  waiters with the same rejection) instead of buffering unboundedly.
* **Per-request timeouts.**  The blocking :meth:`compile`/:meth:`run`
  wrappers raise :class:`ServiceTimeout` after ``timeout`` seconds; the
  underlying work keeps running and lands in the caches for the next request.
* **Metrics.**  :meth:`metrics` snapshots a :class:`ServiceMetrics`: request
  counters, coalesced/rejected/timeout counts, queue-depth high-water mark,
  session memory/disk/miss counters and per-stage latency percentiles —
  rendered by :func:`repro.harness.service_metrics_table`.

Deadlock-freedom of the flight protocol: a flight's winner is always a
thread that is *running* (never one parked in the admission queue).  A
dequeued task that finds its key already claimed simply waits on the
winner's future; a dequeued task that finds the flight unclaimed claims it
and computes inline.  Claiming is first-come-first-served across compile and
run tasks, so no worker ever waits on work that only it could start.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.options import BackendOptions
from ..api.program import CompiledProgram, source_fingerprint
from ..api.session import Session
from .store import ArtifactStore

#: Samples kept per latency stage for the percentile snapshot.
_LATENCY_WINDOW = 4096


class ServiceRejected(RuntimeError):
    """The admission queue is full; the request was not accepted.

    Typed so clients can distinguish backpressure (retry later, shed load)
    from a failed compile (do not retry — see session quarantine).
    """

    def __init__(self, depth: int, max_queue: int):
        super().__init__(
            f"service admission queue is full ({depth}/{max_queue} requests "
            f"queued); retry later or raise max_queue"
        )
        self.depth = depth
        self.max_queue = max_queue


class ServiceTimeout(TimeoutError):
    """A blocking request exceeded its per-request timeout.

    The underlying flight keeps running: its artifact still lands in the
    session/store caches, so a retry is typically a fast hit.
    """


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    n = len(ordered)

    def pick(q: float) -> float:
        return ordered[min(n - 1, int(round(q * (n - 1))))]

    return {
        "count": n,
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
        "max": ordered[-1],
    }


@dataclass(frozen=True)
class ServiceMetrics:
    """A point-in-time snapshot of one :class:`CompileService`.

    ``misses`` is the count of true backend lowers the session performed —
    the acceptance number for single-flight (one per distinct key, fleet
    wide); ``memory_hits``/``disk_hits`` split cache reuse by layer.
    ``latency`` maps stage name (``queue_wait``, ``lower``, ``execute``) to
    ``{count, p50, p90, p99, max}`` in seconds.
    """

    submitted_compiles: int
    submitted_runs: int
    completed: int
    failed: int
    coalesced: int
    rejected: int
    timeouts: int
    flights_claimed: int
    queue_depth_high_water: int
    memory_hits: int
    disk_hits: int
    misses: int
    artifacts: int
    store: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "submitted_compiles": self.submitted_compiles,
            "submitted_runs": self.submitted_runs,
            "completed": self.completed,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "flights_claimed": self.flights_claimed,
            "queue_depth_high_water": self.queue_depth_high_water,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "artifacts": self.artifacts,
            "store": dict(self.store),
            "latency": {k: dict(v) for k, v in self.latency.items()},
        }


class _Flight:
    """One in-flight compile key: a future plus a claimed flag."""

    __slots__ = ("future", "claimed")

    def __init__(self):
        self.future: Future = Future()
        self.claimed = False


class _Task:
    """One queued request (compile or run)."""

    __slots__ = ("kind", "key", "source", "backend", "options", "entry",
                 "args", "run_kwargs", "future", "enqueued_at")

    def __init__(self, kind: str, key: Tuple, source: str, backend,
                 options: BackendOptions, future: Future,
                 entry: Optional[str] = None, args: Sequence = (),
                 run_kwargs: Optional[Dict] = None):
        self.kind = kind
        self.key = key
        self.source = source
        self.backend = backend
        self.options = options
        self.entry = entry
        self.args = args
        self.run_kwargs = run_kwargs or {}
        self.future = future
        self.enqueued_at = time.perf_counter()


class CompileService:
    """A concurrent compile/run server over one session and its store."""

    def __init__(self, session: Optional[Session] = None, *,
                 store: Optional[ArtifactStore] = None,
                 workers: int = 4, max_queue: int = 64,
                 default_timeout: Optional[float] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue!r}")
        if session is None:
            session = Session(store=store)
        elif store is not None:
            if session.store is not None and session.store is not store:
                raise ValueError(
                    "session already has a different store attached"
                )
            session.store = store
        self.session = session
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        self._queue: "queue.Queue[Optional[_Task]]" = queue.Queue(
            maxsize=max_queue)
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple, _Flight] = {}
        self._counters = {
            "submitted_compiles": 0,
            "submitted_runs": 0,
            "completed": 0,
            "failed": 0,
            "coalesced": 0,
            "rejected": 0,
            "timeouts": 0,
            "flights_claimed": 0,
            "queue_depth_high_water": 0,
        }
        self._latency: Dict[str, deque] = {
            "queue_wait": deque(maxlen=_LATENCY_WINDOW),
            "lower": deque(maxlen=_LATENCY_WINDOW),
            "execute": deque(maxlen=_LATENCY_WINDOW),
        }
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"compile-service-{i}")
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- request admission -----------------------------------------------------

    def _resolve(self, source, backend, options: Optional[BackendOptions],
                 overrides: Dict) -> Tuple[str, object, BackendOptions, Tuple]:
        source = getattr(source, "source", source)
        backend_obj = self.session.registry.get(backend)
        opts = backend_obj.make_options(options, **overrides)
        key = (source_fingerprint(source), backend_obj.name, opts.cache_key())
        return source, backend_obj, opts, key

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by

    def _admit(self, task: _Task) -> None:
        """Enqueue ``task`` or raise :class:`ServiceRejected` (typed)."""
        if self._closed:
            raise RuntimeError("CompileService is closed")
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            self._bump("rejected")
            rejection = ServiceRejected(self._queue.qsize(), self.max_queue)
            raise rejection from None
        with self._lock:
            depth = self._queue.qsize()
            if depth > self._counters["queue_depth_high_water"]:
                self._counters["queue_depth_high_water"] = depth

    def submit_compile(self, source, backend="cpu",
                       options: Optional[BackendOptions] = None,
                       **overrides) -> Future:
        """Enqueue a compile; returns a future resolving to the
        :class:`CompiledProgram`.

        Duplicate in-flight keys coalesce onto the existing flight's future
        without consuming queue capacity; keys already in the session memory
        cache resolve inline without touching the queue at all.
        """
        if self._closed:
            raise RuntimeError("CompileService is closed")
        source, backend_obj, opts, key = self._resolve(
            source, backend, options, overrides)
        self._bump("submitted_compiles")
        with self._lock:
            flight = self._inflight.get(key)
            if flight is not None:
                self._counters["coalesced"] += 1
                return flight.future
        # Hot path: the session already holds the artifact — resolve inline
        # (a memory hit) instead of burning queue capacity.
        if self.session.cached_key(key):
            future: Future = Future()
            try:
                future.set_result(
                    self.session.lower(source, backend_obj, opts))
                self._bump("completed")
            except BaseException as exc:  # pragma: no cover - defensive
                self._bump("failed")
                future.set_exception(exc)
            return future
        with self._lock:
            flight = self._inflight.get(key)
            if flight is not None:
                self._counters["coalesced"] += 1
                return flight.future
            flight = _Flight()
            self._inflight[key] = flight
        task = _Task("compile", key, source, backend_obj, opts, flight.future)
        try:
            self._admit(task)
        except ServiceRejected as rejection:
            # Resolve the flight with the rejection so any waiter that
            # coalesced between registration and this failure unblocks with
            # the same typed error, then retract it.
            with self._lock:
                self._inflight.pop(key, None)
            flight.future.set_exception(rejection)
            raise
        return flight.future

    def submit_run(self, source, entry: str, args: Sequence = (), *,
                   backend="cpu", options: Optional[BackendOptions] = None,
                   execution_mode: Optional[str] = None,
                   threads: Optional[int] = None, **overrides) -> Future:
        """Enqueue compile-if-needed + execute; the future resolves to the
        :class:`repro.runtime.Interpreter` that ran ``entry`` (arrays in
        ``args`` are mutated in place per Fortran semantics).

        The compile half shares the single-flight protocol with
        :meth:`submit_compile`; the execute half always runs (runs are never
        coalesced — every client gets its own execution).
        """
        if self._closed:
            raise RuntimeError("CompileService is closed")
        source, backend_obj, opts, key = self._resolve(
            source, backend, options, overrides)
        self._bump("submitted_runs")
        run_kwargs = {}
        if execution_mode is not None:
            run_kwargs["execution_mode"] = execution_mode
        if threads is not None:
            run_kwargs["threads"] = threads
        future: Future = Future()
        task = _Task("run", key, source, backend_obj, opts, future,
                     entry=entry, args=args, run_kwargs=run_kwargs)
        self._admit(task)
        return future

    # -- blocking convenience --------------------------------------------------

    def _await(self, future: Future, timeout: Optional[float]):
        timeout = timeout if timeout is not None else self.default_timeout
        try:
            return future.result(timeout)
        except _FutureTimeout:
            self._bump("timeouts")
            raise ServiceTimeout(
                f"request did not complete within {timeout}s (the flight "
                f"keeps running; a retry will reuse its artifact)"
            ) from None

    def compile(self, source, backend="cpu",
                options: Optional[BackendOptions] = None,
                timeout: Optional[float] = None,
                **overrides) -> CompiledProgram:
        """Blocking compile with per-request ``timeout``."""
        future = self.submit_compile(source, backend, options, **overrides)
        return self._await(future, timeout)

    def run(self, source, entry: str, args: Sequence = (), *,
            backend="cpu", options: Optional[BackendOptions] = None,
            timeout: Optional[float] = None,
            execution_mode: Optional[str] = None,
            threads: Optional[int] = None, **overrides):
        """Blocking compile-if-needed + execute with per-request
        ``timeout``; returns the interpreter for stats access."""
        future = self.submit_run(
            source, entry, args, backend=backend, options=options,
            execution_mode=execution_mode, threads=threads, **overrides)
        return self._await(future, timeout)

    # -- execution -------------------------------------------------------------

    def _lower_single_flight(self, task: _Task) -> CompiledProgram:
        """Compile ``task``'s key exactly once fleet-wide.

        The claimer computes inline; everybody else blocks on the winner's
        future and shares its outcome (including a quarantine exception).
        """
        with self._lock:
            flight = self._inflight.get(task.key)
            if flight is None:
                flight = _Flight()
                self._inflight[task.key] = flight
            claimer = not flight.claimed
            if claimer:
                flight.claimed = True
                self._counters["flights_claimed"] += 1
            else:
                self._counters["coalesced"] += 1
        if not claimer:
            return flight.future.result()
        started = time.perf_counter()
        try:
            compiled = self.session.lower(task.source, task.backend,
                                          task.options)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(task.key, None)
            flight.future.set_exception(exc)
            raise
        with self._lock:
            self._latency["lower"].append(time.perf_counter() - started)
            self._inflight.pop(task.key, None)
        flight.future.set_result(compiled)
        return compiled

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                self._queue.task_done()
                return
            with self._lock:
                self._latency["queue_wait"].append(
                    time.perf_counter() - task.enqueued_at)
            try:
                if task.kind == "compile":
                    # The flight future doubles as the request future; the
                    # claimer resolves it inside _lower_single_flight.
                    self._lower_single_flight(task)
                    self._bump("completed")
                else:
                    compiled = self._lower_single_flight(task)
                    started = time.perf_counter()
                    interp = compiled.run(task.entry, *task.args,
                                          **task.run_kwargs)
                    with self._lock:
                        self._latency["execute"].append(
                            time.perf_counter() - started)
                    task.future.set_result(interp)
                    self._bump("completed")
            except BaseException as exc:
                self._bump("failed")
                if not task.future.done():
                    task.future.set_exception(exc)
            finally:
                self._queue.task_done()

    # -- introspection / lifecycle ---------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of service + session + store counters."""
        cache = self.session.cache_stats
        store = self.session.store
        with self._lock:
            counters = dict(self._counters)
            latency = {
                stage: _percentiles(list(samples))
                for stage, samples in self._latency.items()
            }
        return ServiceMetrics(
            submitted_compiles=counters["submitted_compiles"],
            submitted_runs=counters["submitted_runs"],
            completed=counters["completed"],
            failed=counters["failed"],
            coalesced=counters["coalesced"],
            rejected=counters["rejected"],
            timeouts=counters["timeouts"],
            flights_claimed=counters["flights_claimed"],
            queue_depth_high_water=counters["queue_depth_high_water"],
            memory_hits=cache["hits"],
            disk_hits=cache.get("disk_hits", 0),
            misses=cache["misses"],
            artifacts=cache["artifacts"],
            store=store.stats if store is not None else {},
            latency=latency,
        )

    def drain(self) -> None:
        """Block until every admitted request has been processed."""
        self._queue.join()

    def close(self) -> None:
        """Stop accepting requests and shut the worker threads down."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompileService workers={len(self._workers)} "
            f"max_queue={self.max_queue} depth={self._queue.qsize()}>"
        )


__all__ = [
    "ServiceRejected",
    "ServiceTimeout",
    "ServiceMetrics",
    "CompileService",
]
