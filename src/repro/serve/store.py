"""Content-addressed on-disk artifact store.

The :class:`repro.api.Session` cache is an in-process memo dict: every fresh
process re-runs discovery/extraction/lowering for every artifact it touches.
The :class:`ArtifactStore` promotes that cache to disk so *processes* share
compiles: an artifact is keyed by the same ``(source fingerprint, backend
name, frozen-options cache key)`` triple the session uses, persisted as
printed-IR text (reloaded through the existing printer→parser round-trip,
which is property-tested to be stable) plus a JSON metadata sidecar.

Design constraints, in order:

* **Concurrent writers are safe.**  Every file lands via temp-file +
  ``os.replace`` (atomic on POSIX), with unique temp names per
  process/thread, so a reader never observes a half-written entry and two
  processes racing the same key simply last-write-win equivalent content.
* **Corruption is a miss, never a crash.**  The metadata sidecar records a
  sha256 checksum of the IR payload; a truncated IR file, a bad checksum, an
  unparseable sidecar, a parse error in the IR itself or a module that fails
  verification all count as ``corrupt`` misses, the entry is deleted
  best-effort, and the client recompiles.
* **The format is versioned.**  ``STORE_FORMAT_VERSION`` mismatches are
  misses (counted separately), so a store written by a future layout never
  feeds garbage into an old reader.
* **Bounded size.**  ``max_bytes`` caps the store; eviction is LRU by
  sidecar mtime (reads touch the sidecar), oldest first.

The store deliberately persists no runtime state: options and source are
supplied by the caller at load time (the session already holds both), and
``pass_statistics`` stay empty on a reloaded artifact — the passes did not
run in this process.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..api.artifact import CompiledArtifact
from ..dialects.builtin import ModuleOp
from ..ir.parser import parse_module
from ..ir.printer import print_module

#: On-disk layout version; bump on any incompatible change.  A mismatched
#: entry is a (counted) miss, never an error.
STORE_FORMAT_VERSION = 1

#: Separator between the FIR module and the stencil module inside one ``.ir``
#: payload.  The printer only emits generic-syntax operations, so this line
#: can never appear inside printed IR.
_MODULE_SEPARATOR = "//=== repro.serve stencil-module ===//"

_temp_counter = itertools.count()


def key_digest(key: Tuple) -> str:
    """Stable hex digest of a session cache key.

    ``key`` is the session triple ``(source_fingerprint, backend_name,
    options.cache_key())``; the options component is a tuple of
    ``(field, value)`` pairs over str/bool/int/None/tuple values, whose
    ``repr`` is deterministic across processes.
    """
    fingerprint, backend, options_key = key
    material = f"{fingerprint}\x00{backend}\x00{options_key!r}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def serialize_artifact(artifact: CompiledArtifact) -> Tuple[str, Dict]:
    """Render an artifact to its persistent form: the IR payload text and
    the JSON-ready metadata dict (sans checksum/size, added at write time)."""
    sections = [print_module(artifact.fir_module)]
    if artifact.stencil_module is not None:
        sections.append(print_module(artifact.stencil_module))
    payload = ("\n" + _MODULE_SEPARATOR + "\n").join(sections)
    meta = {
        "backend": artifact.backend,
        "has_stencil_module": artifact.stencil_module is not None,
        "discovered_stencils": dict(artifact.discovered_stencils),
        "extracted_functions": list(artifact.extracted_functions),
    }
    return payload, meta


def deserialize_artifact(payload: str, meta: Dict, *, source: str,
                         backend: str, options) -> CompiledArtifact:
    """Rebuild a :class:`CompiledArtifact` from its persistent form.

    Raises on any malformation (parse error, wrong module count, failed
    verification) — the store catches and converts to a miss.
    """
    sections = payload.split("\n" + _MODULE_SEPARATOR + "\n")
    expected = 2 if meta["has_stencil_module"] else 1
    if len(sections) != expected:
        raise ValueError(
            f"expected {expected} IR section(s), found {len(sections)}"
        )
    modules: List[ModuleOp] = []
    for text in sections:
        module = parse_module(text)
        if not isinstance(module, ModuleOp):
            raise ValueError(f"payload section is not a module: {module.name}")
        module.verify()
        modules.append(module)
    return CompiledArtifact(
        source=source,
        backend=backend,
        options=options,
        fir_module=modules[0],
        stencil_module=modules[1] if len(modules) == 2 else None,
        discovered_stencils={
            str(k): int(v) for k, v in meta["discovered_stencils"].items()
        },
        extracted_functions=[str(f) for f in meta["extracted_functions"]],
    )


class ArtifactStore:
    """A content-addressed, size-capped, crash-safe artifact store on disk.

    One entry per key, two files per entry under ``root/v1/``:

    * ``<digest>.ir``   — printed-IR payload (FIR module, then the stencil
      module separated by a sentinel line);
    * ``<digest>.json`` — metadata sidecar: format version, the human-readable
      key components, the payload checksum and size, and artifact stats
      (stencil counts, extracted function names).

    The sidecar is the commit point: readers load it first, then the payload,
    and accept the entry only if the checksum matches.  Its mtime doubles as
    the LRU clock (touched on every hit).
    """

    def __init__(self, root, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._dir = self.root / f"v{STORE_FORMAT_VERSION}"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "corrupt_entries": 0,
            "version_mismatches": 0,
            "evictions": 0,
            "write_errors": 0,
        }

    # -- paths ----------------------------------------------------------------

    def _paths(self, digest: str) -> Tuple[Path, Path]:
        return self._dir / f"{digest}.ir", self._dir / f"{digest}.json"

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._stats[counter] += by

    # -- read path -------------------------------------------------------------

    def load(self, key: Tuple, *, source: str, backend: str,
             options) -> Optional[CompiledArtifact]:
        """The artifact stored under ``key``, or ``None`` (a safe miss).

        Every failure mode — absent entry, unreadable or unparseable sidecar,
        version mismatch, checksum mismatch (truncation, corruption), IR
        parse or verification failure — returns ``None``; corrupt entries are
        additionally deleted best-effort so they stop costing read attempts.
        """
        digest = key_digest(key)
        ir_path, meta_path = self._paths(digest)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            if meta_path.exists():
                self._bump("corrupt_entries")
                self._delete_entry(digest)
            self._bump("misses")
            return None
        if meta.get("format_version") != STORE_FORMAT_VERSION:
            self._bump("version_mismatches")
            self._bump("misses")
            return None
        try:
            payload = ir_path.read_text(encoding="utf-8")
        except OSError:
            self._bump("corrupt_entries")
            self._delete_entry(digest)
            self._bump("misses")
            return None
        if _checksum(payload) != meta.get("checksum"):
            self._bump("corrupt_entries")
            self._delete_entry(digest)
            self._bump("misses")
            return None
        try:
            artifact = deserialize_artifact(
                payload, meta["artifact"],
                source=source, backend=backend, options=options,
            )
        except Exception:
            self._bump("corrupt_entries")
            self._delete_entry(digest)
            self._bump("misses")
            return None
        self._touch(meta_path)
        self._bump("hits")
        return artifact

    # -- write path ------------------------------------------------------------

    def save(self, key: Tuple, artifact: CompiledArtifact) -> bool:
        """Persist ``artifact`` under ``key``; returns False on I/O failure.

        Write order is payload-then-sidecar, each via an atomic rename, so a
        concurrent reader either sees the complete entry or a checksum
        mismatch (= miss).  Never raises: a store that cannot write degrades
        the system to compile-every-process, not to broken.
        """
        digest = key_digest(key)
        ir_path, meta_path = self._paths(digest)
        payload, artifact_meta = serialize_artifact(artifact)
        fingerprint, backend, options_key = key
        meta = {
            "format_version": STORE_FORMAT_VERSION,
            "key": {
                "source_fingerprint": fingerprint,
                "backend": backend,
                "options": repr(options_key),
            },
            "checksum": _checksum(payload),
            "payload_bytes": len(payload.encode("utf-8")),
            "artifact": artifact_meta,
        }
        try:
            self._atomic_write(ir_path, payload)
            self._atomic_write(meta_path, json.dumps(meta, indent=1, sort_keys=True))
        except OSError:
            self._bump("write_errors")
            return False
        self._bump("writes")
        if self.max_bytes is not None:
            self._evict_to_cap(keep=digest)
        return True

    def _atomic_write(self, path: Path, text: str) -> None:
        temp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_temp_counter)}.tmp"
        )
        temp.write_text(text, encoding="utf-8")
        os.replace(temp, path)

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    # -- eviction / management -------------------------------------------------

    def entries(self) -> List[Tuple[str, int, float]]:
        """Current entries as ``(digest, total bytes, sidecar mtime)``,
        least-recently-used first.

        Coarse filesystem timestamps routinely give several entries the same
        mtime; the digest is the tiebreak, so the ordering — and therefore
        which entry an over-cap store evicts — is deterministic across runs
        and platforms instead of directory-enumeration order."""
        found = []
        for meta_path in self._dir.glob("*.json"):
            digest = meta_path.stem
            ir_path = self._dir / f"{digest}.ir"
            try:
                stat = meta_path.stat()
                size = stat.st_size + (
                    ir_path.stat().st_size if ir_path.exists() else 0
                )
            except OSError:
                continue
            found.append((digest, size, stat.st_mtime))
        found.sort(key=lambda item: (item[2], item[0]))
        return found

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def _evict_to_cap(self, keep: Optional[str] = None) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        The just-written entry (``keep``) is evicted last even if its mtime
        ties with older entries, so a cap smaller than one artifact still
        serves the write that triggered eviction.
        """
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        if keep is not None:
            entries.sort(key=lambda item: (item[0] == keep, item[2], item[0]))
        for digest, size, _ in entries:
            if total <= self.max_bytes:
                break
            self._delete_entry(digest)
            self._bump("evictions")
            total -= size

    def _delete_entry(self, digest: str) -> None:
        for path in self._paths(digest):
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Delete every entry (counters are preserved)."""
        for digest, _, _ in self.entries():
            self._delete_entry(digest)

    @property
    def stats(self) -> Dict[str, int]:
        """Measured store counters: hits, misses, writes, corrupt entries,
        version mismatches, evictions, write errors."""
        with self._lock:
            return dict(self._stats)

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ArtifactStore {self.root} entries={len(self)} "
            f"max_bytes={self.max_bytes}>"
        )


__all__ = [
    "STORE_FORMAT_VERSION",
    "key_digest",
    "serialize_artifact",
    "deserialize_artifact",
    "ArtifactStore",
]
