"""``repro.serve`` — compilation as a service.

Two layers promote the in-process :class:`repro.api.Session` memo dict to a
shared, concurrent serving platform (ROADMAP item 1, the "millions of users"
move):

* :class:`ArtifactStore` (:mod:`repro.serve.store`) — a content-addressed
  **on-disk** artifact cache keyed by the session's own ``(source
  fingerprint, backend, frozen options)`` triple, persisting printed-IR text
  plus a JSON metadata sidecar.  Atomic writes, checksum-verified reads
  (corruption is a miss, never a crash), a versioned format and an LRU size
  cap.  Attach one via ``Session(store=ArtifactStore(path))`` and warm
  processes skip every lower a previous process already did.
* :class:`CompileService` (:mod:`repro.serve.service`) — a concurrent
  compile/run front door: single-flight coalescing (one backend lower per
  distinct key, fleet-wide), a bounded admission queue with typed
  :class:`ServiceRejected` backpressure, per-request timeouts
  (:class:`ServiceTimeout`) and a :class:`ServiceMetrics` snapshot rendered
  by :func:`repro.harness.service_metrics_table`.

Quickstart::

    from repro.serve import ArtifactStore, CompileService

    with CompileService(store=ArtifactStore("~/.cache/repro")) as service:
        compiled = service.compile(source, "gpu", lower_to_scf=True)
        service.run(source, "gauss_seidel", [field], backend="gpu",
                    execution_mode="vectorize")
        print(service.metrics().to_dict())
"""

from __future__ import annotations

from .store import (
    STORE_FORMAT_VERSION,
    ArtifactStore,
    deserialize_artifact,
    key_digest,
    serialize_artifact,
)
from .service import (
    CompileService,
    ServiceMetrics,
    ServiceRejected,
    ServiceTimeout,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "ArtifactStore",
    "key_digest",
    "serialize_artifact",
    "deserialize_artifact",
    "CompileService",
    "ServiceMetrics",
    "ServiceRejected",
    "ServiceTimeout",
]
